// sensor_mac.hpp — the sensor-side CAEM medium access state machine
// (paper Fig 3), shared by all three protocols:
//
//   sleep ──(>= min burst queued, or hold timeout)──> monitoring
//   monitoring ──(tone says idle AND CSI >= threshold*)──> backoff
//   backoff expiry ──(still idle AND still permitted)──> warmup -> transmit
//   transmit ──(collision tone)──> monitoring (retry++)
//   transmit ──(burst complete)──> monitoring (more data) | sleep
//   any ──(no tone: CH gone)──> sleep until the next round
//
// (*) the CSI gate is the ThresholdController: pure LEACH always passes,
// Scheme 2 requires the 2 Mbps class, Scheme 1 adapts per Fig 6.
#pragma once

#include <cstdint>
#include <functional>

#include "energy/radio_energy_model.hpp"
#include "mac/backoff.hpp"
#include "mac/burst_policy.hpp"
#include "mac/cluster_head_mac.hpp"
#include "phy/error_model.hpp"
#include "phy/frame.hpp"
#include "queueing/packet_queue.hpp"
#include "queueing/threshold_controller.hpp"
#include "sim/simulator.hpp"
#include "tone/tone_monitor.hpp"
#include "util/rng.hpp"

namespace caem::mac {

enum class SensorState {
  kSleeping,      ///< both radios asleep; data may be queued below min burst
  kMonitoring,    ///< tone radio sniffing for idle pulses and CSI
  kBackoff,       ///< contention delay running
  kWarmup,        ///< data radio starting up before the burst
  kTransmitting,  ///< burst on air (tone radio listening for collision)
  kDetached,      ///< no cluster this round (or CH lost); radios asleep
  kDead,          ///< battery exhausted
};

[[nodiscard]] const char* to_string(SensorState state) noexcept;

struct SensorMacConfig {
  BackoffPolicy backoff;
  BurstPolicy burst;
  double check_interval_s = 50e-3;    ///< tone sniff cadence (idle pulse period)
  double acquisition_delay_s = 8e-3;  ///< initial tone acquisition at wake (Table II)
  /// Deadline override (extension): when > 0, a head-of-line packet older
  /// than this may be sent even if the CSI gate denies.
  double csi_gate_deadline_s = 0.0;
};

struct SensorMacCounters {
  std::uint64_t wakeups = 0;
  std::uint64_t checks = 0;
  std::uint64_t csi_denied = 0;     ///< idle channel but CSI below threshold
  std::uint64_t deadline_overrides = 0;  ///< CSI gate bypassed by packet age
  std::uint64_t busy_denied = 0;    ///< channel not idle at a check
  std::uint64_t bursts_started = 0;
  std::uint64_t bursts_completed = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_failed = 0;  ///< CRC failures (kept for retransmission)
  std::uint64_t collisions = 0;
  std::uint64_t packets_dropped_retry = 0;
};

class SensorMac final : public Transmitter {
 public:
  using DropCallback =
      std::function<void(const queueing::Packet&, queueing::DropReason, double now_s)>;
  /// True link SNR (dB) used for the physical frame-error evaluation
  /// (the *decision* CSI comes from the noisy ToneMonitor estimate).
  using TrueSnrProvider = std::function<double(double now_s)>;

  SensorMac(sim::Simulator* sim, std::uint32_t node_id, SensorMacConfig config,
            energy::Radio* data_radio, energy::Radio* tone_radio,
            queueing::PacketQueue* queue, queueing::ThresholdController* controller,
            tone::ToneMonitor* monitor, const phy::AbicmTable* table,
            const phy::FrameTiming* timing, const phy::PacketErrorModel* error_model,
            TrueSnrProvider true_snr, util::Rng rng);
  ~SensorMac() override;

  SensorMac(const SensorMac&) = delete;
  SensorMac& operator=(const SensorMac&) = delete;

  // --- round lifecycle (driven by the core network) ---
  /// Join a cluster for the new round.  The monitor must already be
  /// attached to the CH's broadcaster.
  void attach_round(double now_s, ClusterHeadMac* ch);
  /// Leave the current cluster (round boundary); transmissions abort,
  /// queued packets survive.
  void detach_round(double now_s);
  /// Battery exhausted: stop everything, drop queued packets.
  void die(double now_s);

  // --- data path ---
  /// The node glue calls this after pushing an arrival into the queue
  /// (and after feeding the threshold controller).
  void on_packet_arrival(double now_s);

  // --- Transmitter (CH-driven aborts) ---
  void abort_collision(double now_s) override;
  void abort_round_end(double now_s) override;
  [[nodiscard]] std::uint32_t node_id() const noexcept override { return node_id_; }

  [[nodiscard]] SensorState state() const noexcept { return state_; }
  [[nodiscard]] const SensorMacCounters& counters() const noexcept { return counters_; }
  void set_drop_callback(DropCallback callback) { on_drop_ = std::move(callback); }

 private:
  void wake(double now_s);
  void go_to_sleep(double now_s);
  void schedule_check(double delay_s);
  void schedule_jittered_check();
  void check_channel(double now_s);
  void backoff_expired(double now_s);
  void start_transmission(double now_s);
  void complete_transmission(double now_s);
  void cancel_pending();
  void arm_hold_timer(double now_s);
  [[nodiscard]] bool attached_and_alive() const noexcept;
  /// CSI gate with the optional head-of-line deadline override.
  [[nodiscard]] bool gate_permits(double csi_db, double now_s);

  sim::Simulator* sim_;
  std::uint32_t node_id_;
  SensorMacConfig config_;
  energy::Radio* data_radio_;
  energy::Radio* tone_radio_;
  queueing::PacketQueue* queue_;
  queueing::ThresholdController* controller_;
  tone::ToneMonitor* monitor_;
  const phy::AbicmTable* table_;
  const phy::FrameTiming* timing_;
  const phy::PacketErrorModel* error_model_;
  TrueSnrProvider true_snr_;
  util::Rng rng_;
  DropCallback on_drop_;

  ClusterHeadMac* ch_ = nullptr;
  SensorState state_ = SensorState::kDetached;
  std::uint32_t retry_ = 0;  ///< back-off exponent (collision retries)
  std::size_t burst_frames_ = 0;
  phy::ModeIndex burst_mode_ = 0;
  double burst_start_s_ = 0.0;
  sim::EventId pending_event_ = sim::kInvalidEventId;  // check/backoff/warmup/complete
  sim::EventId hold_event_ = sim::kInvalidEventId;
  std::uint64_t epoch_ = 0;

  SensorMacCounters counters_;
};

}  // namespace caem::mac
