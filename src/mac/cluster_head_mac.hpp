// cluster_head_mac.hpp — the cluster head's side of the data channel.
//
// The CH is the arbiter the paper's Fig 4 describes: it listens on the
// data channel, announces its state over the tone channel (idle /
// receive / collision), and detects collisions when two sensors transmit
// concurrently.  On detection it emits a single collision tone pulse;
// the transmitting sensors hear it (their tone radios stay on while
// transmitting) and abort, which is CAEM's cheap collision *detection* —
// in contrast to 802.11-style avoidance.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "energy/radio_energy_model.hpp"
#include "phy/abicm.hpp"
#include "queueing/packet.hpp"
#include "sim/simulator.hpp"
#include "tone/tone_broadcaster.hpp"

namespace caem::mac {

/// What the CH needs from a transmitting sensor: an abort channel.
class Transmitter {
 public:
  virtual ~Transmitter() = default;

  /// The CH's collision pulse was heard: stop transmitting immediately.
  virtual void abort_collision(double now_s) = 0;

  /// The round ended (or the CH died) while transmitting: stop, keep data.
  virtual void abort_round_end(double now_s) = 0;

  [[nodiscard]] virtual std::uint32_t node_id() const = 0;
};

class ClusterHeadMac {
 public:
  /// Fired for every successfully received data frame.
  using DeliveryCallback = std::function<void(const queueing::Packet& packet,
                                              phy::ModeIndex mode, std::uint32_t sender,
                                              double now_s)>;

  /// @param detect_delay_s  time from overlap to collision detection
  ClusterHeadMac(sim::Simulator* sim, std::uint32_t head_id, energy::Radio* data_radio,
                 tone::ToneBroadcaster* tone, double detect_delay_s);
  ~ClusterHeadMac();

  ClusterHeadMac(const ClusterHeadMac&) = delete;
  ClusterHeadMac& operator=(const ClusterHeadMac&) = delete;

  /// Take office: start tone broadcasting and data-channel listening.
  void start(double now_s);

  /// Leave office (round end or death): abort any active transmissions
  /// (senders keep their packets), silence the tone, sleep the radio.
  void stop(double now_s);

  /// A sensor's burst hits the air.  The CH transitions to receive (or
  /// detects a collision if the channel was already occupied).
  void begin_transmission(Transmitter* sender, double now_s);

  /// A sensor's burst left the air cleanly.
  void finish_transmission(Transmitter* sender, double now_s);

  /// A successfully decoded frame arrives (invoked by the sensor's PHY
  /// evaluation; reception energy is already accounted by the rx state).
  void deliver(const queueing::Packet& packet, phy::ModeIndex mode, std::uint32_t sender,
               double now_s);

  void set_delivery_callback(DeliveryCallback callback) { on_delivery_ = std::move(callback); }

  [[nodiscard]] bool running() const noexcept { return running_; }
  [[nodiscard]] bool channel_busy() const noexcept { return !active_.empty(); }
  [[nodiscard]] std::uint32_t head_id() const noexcept { return head_id_; }

  [[nodiscard]] std::uint64_t frames_received() const noexcept { return frames_received_; }
  [[nodiscard]] std::uint64_t collisions() const noexcept { return collisions_; }

 private:
  void handle_collision(double now_s);

  sim::Simulator* sim_;
  std::uint32_t head_id_;
  energy::Radio* data_radio_;
  tone::ToneBroadcaster* tone_;
  double detect_delay_s_;
  DeliveryCallback on_delivery_;

  std::vector<Transmitter*> active_;
  bool running_ = false;
  bool collision_pending_ = false;
  sim::EventId pending_event_ = sim::kInvalidEventId;  // tone update / collision
  std::uint64_t epoch_ = 0;

  std::uint64_t frames_received_ = 0;
  std::uint64_t collisions_ = 0;
};

}  // namespace caem::mac
