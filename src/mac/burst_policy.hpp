// burst_policy.hpp — how many packets go out per channel access.
//
// Paper: "the minimum number of packets sent for one transmission is 3
// [to amortise the radio start-up overhead].  And to ensure fairness
// among sensor nodes, the maximal number of packets sent per transmission
// is fixed at 8."  The hold timeout is our addition (documented in
// DESIGN.md): with fewer than min_packets queued and no new arrivals, a
// sensor would otherwise hold data forever; after the timeout it contends
// with an undersized burst.
#pragma once

#include <algorithm>
#include <cstddef>

namespace caem::mac {

struct BurstPolicy {
  std::size_t min_packets = 3;
  std::size_t max_packets = 8;
  double hold_timeout_s = 2.0;

  /// Should a sleeping sensor wake and contend, given its queue length?
  [[nodiscard]] bool should_wake(std::size_t queued) const noexcept {
    return queued >= min_packets;
  }

  /// Packets to include in the next burst.
  [[nodiscard]] std::size_t burst_size(std::size_t queued) const noexcept {
    return std::min(queued, max_packets);
  }
};

}  // namespace caem::mac
