#include "mac/backoff.hpp"

#include <algorithm>

namespace caem::mac {

double BackoffPolicy::delay_s(util::Rng& rng, std::uint32_t retry) const noexcept {
  return rng.uniform() * max_delay_s(retry);
}

double BackoffPolicy::max_delay_s(std::uint32_t retry) const noexcept {
  const std::uint32_t r = std::min(retry, max_retries);
  return static_cast<double>(1ULL << r) * slot_s * static_cast<double>(cw);
}

}  // namespace caem::mac
