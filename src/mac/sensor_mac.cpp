#include "mac/sensor_mac.hpp"

#include <stdexcept>
#include <vector>

namespace caem::mac {

const char* to_string(SensorState state) noexcept {
  switch (state) {
    case SensorState::kSleeping: return "sleeping";
    case SensorState::kMonitoring: return "monitoring";
    case SensorState::kBackoff: return "backoff";
    case SensorState::kWarmup: return "warmup";
    case SensorState::kTransmitting: return "transmitting";
    case SensorState::kDetached: return "detached";
    case SensorState::kDead: return "dead";
  }
  return "?";
}

SensorMac::SensorMac(sim::Simulator* sim, std::uint32_t node_id, SensorMacConfig config,
                     energy::Radio* data_radio, energy::Radio* tone_radio,
                     queueing::PacketQueue* queue, queueing::ThresholdController* controller,
                     tone::ToneMonitor* monitor, const phy::AbicmTable* table,
                     const phy::FrameTiming* timing, const phy::PacketErrorModel* error_model,
                     TrueSnrProvider true_snr, util::Rng rng)
    : sim_(sim),
      node_id_(node_id),
      config_(config),
      data_radio_(data_radio),
      tone_radio_(tone_radio),
      queue_(queue),
      controller_(controller),
      monitor_(monitor),
      table_(table),
      timing_(timing),
      error_model_(error_model),
      true_snr_(std::move(true_snr)),
      rng_(rng) {
  if (sim_ == nullptr || data_radio_ == nullptr || tone_radio_ == nullptr ||
      queue_ == nullptr || controller_ == nullptr || monitor_ == nullptr ||
      table_ == nullptr || timing_ == nullptr || error_model_ == nullptr || !true_snr_) {
    throw std::invalid_argument("SensorMac: null component");
  }
}

SensorMac::~SensorMac() { cancel_pending(); }

void SensorMac::cancel_pending() {
  if (pending_event_ != sim::kInvalidEventId) {
    sim_->cancel(pending_event_);
    pending_event_ = sim::kInvalidEventId;
  }
  if (hold_event_ != sim::kInvalidEventId) {
    sim_->cancel(hold_event_);
    hold_event_ = sim::kInvalidEventId;
  }
}

bool SensorMac::attached_and_alive() const noexcept {
  return state_ != SensorState::kDead && state_ != SensorState::kDetached && ch_ != nullptr;
}

bool SensorMac::gate_permits(double csi_db, double now_s) {
  if (controller_->permits(csi_db)) return true;
  if (config_.csi_gate_deadline_s > 0.0 && !queue_->empty() &&
      now_s - queue_->head().created_s > config_.csi_gate_deadline_s) {
    ++counters_.deadline_overrides;
    return true;
  }
  return false;
}

// ---------------------------------------------------------------- lifecycle

void SensorMac::attach_round(double now_s, ClusterHeadMac* ch) {
  if (state_ == SensorState::kDead) return;
  if (ch == nullptr) throw std::invalid_argument("SensorMac: null cluster head");
  cancel_pending();
  ++epoch_;
  ch_ = ch;
  retry_ = 0;
  // The CH changed, so the channel (and its statistics) changed: the
  // adaptive threshold restarts from the energy-optimal class.
  controller_->reset();
  state_ = SensorState::kSleeping;
  data_radio_->transition(now_s, energy::RadioState::kSleep);
  tone_radio_->transition(now_s, energy::RadioState::kSleep);
  if (config_.burst.should_wake(queue_->size())) {
    wake(now_s);
  } else if (!queue_->empty()) {
    arm_hold_timer(now_s);
  }
}

void SensorMac::detach_round(double now_s) {
  if (state_ == SensorState::kDead) return;
  if (state_ == SensorState::kTransmitting && ch_ != nullptr) {
    ch_->finish_transmission(this, now_s);
  }
  cancel_pending();
  ++epoch_;
  ch_ = nullptr;
  state_ = SensorState::kDetached;
  data_radio_->transition(now_s, energy::RadioState::kSleep);
  tone_radio_->transition(now_s, energy::RadioState::kSleep);
}

void SensorMac::die(double now_s) {
  if (state_ == SensorState::kDead) return;
  if (state_ == SensorState::kTransmitting && ch_ != nullptr) {
    ch_->finish_transmission(this, now_s);
  }
  cancel_pending();
  ++epoch_;
  ch_ = nullptr;
  state_ = SensorState::kDead;
  data_radio_->transition(now_s, energy::RadioState::kOff);
  tone_radio_->transition(now_s, energy::RadioState::kOff);
  queue_->drain([&](const queueing::Packet& packet) {
    if (on_drop_) on_drop_(packet, queueing::DropReason::kNodeDeath, now_s);
  });
}

// ----------------------------------------------------------------- arrivals

void SensorMac::on_packet_arrival(double now_s) {
  if (state_ == SensorState::kDead || state_ == SensorState::kDetached) return;
  if (state_ != SensorState::kSleeping) return;  // already contending
  if (config_.burst.should_wake(queue_->size())) {
    wake(now_s);
  } else if (!queue_->empty()) {
    arm_hold_timer(now_s);
  }
}

void SensorMac::arm_hold_timer(double now_s) {
  if (hold_event_ != sim::kInvalidEventId) return;
  const std::uint64_t epoch = epoch_;
  hold_event_ = sim_->schedule_at(now_s + config_.burst.hold_timeout_s,
                                  [this, epoch](double now) {
                                    if (epoch != epoch_) return;
                                    hold_event_ = sim::kInvalidEventId;
                                    if (state_ == SensorState::kSleeping && !queue_->empty()) {
                                      wake(now);
                                    }
                                  });
}

// --------------------------------------------------------------- monitoring

void SensorMac::wake(double now_s) {
  ++counters_.wakeups;
  state_ = SensorState::kMonitoring;
  // Tone radio: startup, then duty-cycled sniffing (the kIdle profile
  // carries the duty-scaled power; see core::NetworkConfig).
  tone_radio_->transition(now_s, energy::RadioState::kStartup);
  const double startup = tone_radio_->startup_time_s();
  // Acquisition: the sensor must catch an idle pulse (uniform phase over
  // the pulse period) and classify the interval (acquisition delay).
  const double acquisition =
      rng_.uniform() * config_.check_interval_s + config_.acquisition_delay_s;
  const std::uint64_t epoch = epoch_;
  pending_event_ = sim_->schedule_at(now_s + startup + acquisition, [this, epoch](double now) {
    if (epoch != epoch_) return;
    pending_event_ = sim::kInvalidEventId;
    tone_radio_->transition(now, energy::RadioState::kIdle);
    check_channel(now);
  });
}

void SensorMac::go_to_sleep(double now_s) {
  state_ = SensorState::kSleeping;
  data_radio_->transition(now_s, energy::RadioState::kSleep);
  tone_radio_->transition(now_s, energy::RadioState::kSleep);
  if (!queue_->empty()) arm_hold_timer(now_s);
}

void SensorMac::schedule_check(double delay_s) {
  const std::uint64_t epoch = epoch_;
  pending_event_ = sim_->schedule_in(delay_s, [this, epoch](double now) {
    if (epoch != epoch_) return;
    pending_event_ = sim::kInvalidEventId;
    check_channel(now);
  });
}

void SensorMac::schedule_jittered_check() {
  // Desynchronised retry: without jitter every sensor that deferred on
  // the same busy/collision event would re-check at the same instant and
  // re-collide forever.
  schedule_check(config_.check_interval_s * (0.5 + rng_.uniform()));
}

void SensorMac::check_channel(double now_s) {
  if (!attached_and_alive()) return;
  ++counters_.checks;
  if (!monitor_->hears_tone()) {
    // CH collapsed or switched: power down until the next round (Fig 3).
    detach_round(now_s);
    return;
  }
  if (queue_->empty()) {
    go_to_sleep(now_s);
    return;
  }
  const tone::ToneState observed = monitor_->observed_state(now_s);
  if (observed != tone::ToneState::kIdle) {
    ++counters_.busy_denied;
    schedule_jittered_check();
    return;
  }
  const double csi_db = monitor_->estimate_csi_db(now_s);
  if (!gate_permits(csi_db, now_s)) {
    ++counters_.csi_denied;
    schedule_check(config_.check_interval_s);
    return;
  }
  // Contend: back off, then re-validate before seizing the channel.
  state_ = SensorState::kBackoff;
  const double delay = config_.backoff.delay_s(rng_, retry_);
  const std::uint64_t epoch = epoch_;
  pending_event_ = sim_->schedule_in(delay, [this, epoch](double now) {
    if (epoch != epoch_) return;
    pending_event_ = sim::kInvalidEventId;
    backoff_expired(now);
  });
}

void SensorMac::backoff_expired(double now_s) {
  if (!attached_and_alive()) return;
  if (!monitor_->hears_tone()) {
    detach_round(now_s);
    return;
  }
  const tone::ToneState observed = monitor_->observed_state(now_s);
  const double csi_db = monitor_->estimate_csi_db(now_s);
  if (observed != tone::ToneState::kIdle || !gate_permits(csi_db, now_s)) {
    // Either condition failed: return to the sensing state (paper III-B).
    state_ = SensorState::kMonitoring;
    if (observed != tone::ToneState::kIdle) ++counters_.busy_denied;
    else ++counters_.csi_denied;
    schedule_jittered_check();
    return;
  }
  // Seize the channel: warm the data radio up, then transmit.
  state_ = SensorState::kWarmup;
  burst_mode_ = table_->mode_for_snr(csi_db).value_or(0);
  data_radio_->transition(now_s, energy::RadioState::kStartup);
  const std::uint64_t epoch = epoch_;
  pending_event_ =
      sim_->schedule_in(data_radio_->startup_time_s(), [this, epoch](double now) {
        if (epoch != epoch_) return;
        pending_event_ = sim::kInvalidEventId;
        start_transmission(now);
      });
}

// ------------------------------------------------------------- transmission

void SensorMac::start_transmission(double now_s) {
  if (!attached_and_alive()) return;
  if (!monitor_->hears_tone()) {
    detach_round(now_s);
    return;
  }
  // The tone radio stayed on through the warm-up: if another burst began
  // meanwhile, defer instead of colliding.
  if (monitor_->observed_state(now_s) != tone::ToneState::kIdle) {
    ++counters_.busy_denied;
    data_radio_->transition(now_s, energy::RadioState::kSleep);
    state_ = SensorState::kMonitoring;
    schedule_jittered_check();
    return;
  }
  state_ = SensorState::kTransmitting;
  ++counters_.bursts_started;
  burst_frames_ = config_.burst.burst_size(queue_->size());
  burst_start_s_ = now_s;
  data_radio_->transition(now_s, energy::RadioState::kTx);
  // The tone radio listens at full power during the burst so the sensor
  // can hear a collision pulse (the paper's collision-detection feature).
  tone_radio_->transition(now_s, energy::RadioState::kRx);
  ch_->begin_transmission(this, now_s);
  const double duration = timing_->burst_air_time_s(burst_mode_, burst_frames_);
  const std::uint64_t epoch = epoch_;
  pending_event_ = sim_->schedule_in(duration, [this, epoch](double now) {
    if (epoch != epoch_) return;
    pending_event_ = sim::kInvalidEventId;
    complete_transmission(now);
  });
}

void SensorMac::complete_transmission(double now_s) {
  if (!attached_and_alive()) return;
  ++counters_.bursts_completed;
  ch_->finish_transmission(this, now_s);
  retry_ = 0;  // clean channel access succeeded; reset the back-off exponent

  // Evaluate each frame against the true channel at its own air time
  // (the channel may drift across an 8-frame burst at low modes).
  const double frame_air = timing_->frame_air_time_s(burst_mode_);
  std::vector<queueing::Packet> failed;
  for (std::size_t i = 0; i < burst_frames_ && !queue_->empty(); ++i) {
    queueing::Packet packet = queue_->pop();
    ++counters_.frames_sent;
    const double frame_mid = burst_start_s_ + (static_cast<double>(i) + 0.5) * frame_air;
    const double snr_db = true_snr_(frame_mid);
    const double per =
        error_model_->packet_error_rate(burst_mode_, snr_db, packet.payload_bits);
    if (!rng_.bernoulli(per)) {
      ch_->deliver(packet, burst_mode_, node_id_, now_s);
    } else {
      ++counters_.frames_failed;
      packet.retries += 1;
      if (packet.retries > config_.backoff.max_retries) {
        ++counters_.packets_dropped_retry;
        if (on_drop_) on_drop_(packet, queueing::DropReason::kRetryExhausted, now_s);
      } else {
        failed.push_back(packet);
      }
    }
  }
  // Failed frames keep their place at the head of the line (in order).
  for (auto it = failed.rbegin(); it != failed.rend(); ++it) {
    queue_->requeue_front(*it);
  }

  data_radio_->transition(now_s, energy::RadioState::kSleep);
  if (config_.burst.should_wake(queue_->size()) || !failed.empty()) {
    // More work: return to monitoring and contend again.
    state_ = SensorState::kMonitoring;
    tone_radio_->transition(now_s, energy::RadioState::kIdle);
    schedule_check(config_.check_interval_s * rng_.uniform());
  } else {
    go_to_sleep(now_s);
  }
}

// ------------------------------------------------------------------- aborts

void SensorMac::abort_collision(double now_s) {
  if (state_ != SensorState::kTransmitting) return;
  ++counters_.collisions;
  cancel_pending();
  ++epoch_;
  if (retry_ < config_.backoff.max_retries) ++retry_;
  // Stop the burst; packets stay queued untouched.  Back to sensing.
  data_radio_->transition(now_s, energy::RadioState::kSleep);
  state_ = SensorState::kMonitoring;
  tone_radio_->transition(now_s, energy::RadioState::kIdle);
  schedule_jittered_check();
}

void SensorMac::abort_round_end(double now_s) {
  if (state_ != SensorState::kTransmitting) return;
  cancel_pending();
  ++epoch_;
  ch_ = nullptr;
  state_ = SensorState::kDetached;
  data_radio_->transition(now_s, energy::RadioState::kSleep);
  tone_radio_->transition(now_s, energy::RadioState::kSleep);
}

}  // namespace caem::mac
