#include "mac/burst_policy.hpp"

// BurstPolicy is header-only; this translation unit keeps the build
// layout uniform (one .cpp per header).
namespace caem::mac {}
