#include "queueing/packet_queue.hpp"

namespace caem::queueing {

PacketQueue::PacketQueue(std::size_t capacity) : buffer_(capacity) {}

bool PacketQueue::push(const Packet& packet, double now_s) {
  ++arrivals_;
  if (!buffer_.try_push(packet)) {
    ++overflow_drops_;
    if (on_overflow_) on_overflow_(packet, now_s);
    return false;
  }
  sync_mirror();
  return true;
}

Packet PacketQueue::pop() {
  Packet packet = buffer_.pop();
  sync_mirror();
  return packet;
}

bool PacketQueue::requeue_front(const Packet& packet) {
  const bool ok = buffer_.try_push_front(packet);
  if (ok) sync_mirror();
  return ok;
}

void PacketQueue::drain(const std::function<void(const Packet&)>& sink) {
  while (!buffer_.empty()) {
    const Packet packet = buffer_.pop();
    if (sink) sink(packet);
  }
  sync_mirror();
}

}  // namespace caem::queueing
