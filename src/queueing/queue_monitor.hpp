// queue_monitor.hpp — the paper's traffic-load predictor.
//
// "The sampling interval should be fixed at [one sample] for every m
// incoming packets (in our simulation m = 5). ... the variation of the
// queue length is defined as  dV = V_k - V_{k-1}",
// computed over the sampled queue lengths.  dV >= 0 means the queue is
// building (traffic load rising); dV < 0 means it is draining.
#pragma once

#include <cstdint>
#include <optional>

namespace caem::queueing {

class QueueMonitor {
 public:
  /// @param sample_every_m  packets between samples (paper: m = 5)
  explicit QueueMonitor(std::uint32_t sample_every_m);

  /// Report one packet arrival with the queue length *after* the push.
  /// Every m-th arrival takes a sample; once two samples exist the
  /// returned optional carries dV for this sampling epoch.
  std::optional<double> on_arrival(std::size_t queue_length);

  /// Latest computed variation (nullopt until two samples exist).
  [[nodiscard]] std::optional<double> variation() const noexcept { return variation_; }

  [[nodiscard]] std::uint32_t sample_every() const noexcept { return sample_every_m_; }
  [[nodiscard]] std::uint64_t samples_taken() const noexcept { return samples_; }

  void reset() noexcept;

 private:
  std::uint32_t sample_every_m_;
  std::uint32_t arrivals_since_sample_ = 0;
  std::optional<double> last_sample_;
  std::optional<double> variation_;
  std::uint64_t samples_ = 0;
};

}  // namespace caem::queueing
