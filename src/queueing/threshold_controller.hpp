// threshold_controller.hpp — the paper's adaptive threshold adjustment
// (Fig 6 pseudo-code), plus the fixed variant (Scheme 2) and a disabled
// variant (pure LEACH, which does not gate access on CSI at all).
//
// The controller owns the sensor's current *transmission threshold
// class*: one of the four ABICM modes.  CAEM only contends for the
// channel when the measured CSI supports at least the threshold class.
//
// Fig 6, per packet arrival (once the queue length has armed the
// mechanism by exceeding Q_threshold = 15):
//   every m = 5 arrivals compute dV;
//   dV >= 0  -> lower the threshold one class (more chances to send);
//   dV <  0  -> raise the threshold to the highest class (save energy).
#pragma once

#include <cstdint>

#include "phy/abicm.hpp"
#include "queueing/queue_monitor.hpp"

namespace caem::queueing {

enum class ThresholdPolicy {
  kNone,          ///< pure LEACH: no CSI gating
  kFixedHighest,  ///< Scheme 2: threshold pinned at 2 Mbps
  kAdaptive,      ///< Scheme 1: Fig 6 adjustment
};

[[nodiscard]] const char* to_string(ThresholdPolicy policy) noexcept;

class ThresholdController {
 public:
  /// @param table        the run's ABICM mode table (outlives controller)
  /// @param sample_m     queue sampling interval (paper: 5)
  /// @param arm_length   queue length that arms adjustment (paper: 15)
  ThresholdController(ThresholdPolicy policy, const phy::AbicmTable* table,
                      std::uint32_t sample_m, std::size_t arm_length);

  /// Feed one packet arrival (queue length measured after the push).
  void on_arrival(std::size_t queue_length);

  /// Does the measured CSI permit contending for the channel?
  /// Policy kNone always says yes (pure LEACH ignores the channel).
  [[nodiscard]] bool permits(double csi_db) const noexcept;

  /// Current threshold class (meaningless under kNone but kept valid).
  [[nodiscard]] phy::ModeIndex threshold_class() const noexcept { return threshold_; }
  [[nodiscard]] double threshold_snr_db() const;
  [[nodiscard]] ThresholdPolicy policy() const noexcept { return policy_; }

  /// Counters for the ablation benches.
  [[nodiscard]] std::uint64_t lower_events() const noexcept { return lower_events_; }
  [[nodiscard]] std::uint64_t raise_events() const noexcept { return raise_events_; }

  /// Reset to the initial (highest) threshold, e.g. at a LEACH round
  /// boundary when the CH — and hence the whole link — changes.
  void reset() noexcept;

 private:
  ThresholdPolicy policy_;
  const phy::AbicmTable* table_;
  QueueMonitor monitor_;
  std::size_t arm_length_;
  phy::ModeIndex threshold_;
  std::uint64_t lower_events_ = 0;
  std::uint64_t raise_events_ = 0;
};

}  // namespace caem::queueing
