#include "queueing/threshold_controller.hpp"

#include <stdexcept>

namespace caem::queueing {

const char* to_string(ThresholdPolicy policy) noexcept {
  switch (policy) {
    case ThresholdPolicy::kNone: return "none";
    case ThresholdPolicy::kFixedHighest: return "fixed-highest";
    case ThresholdPolicy::kAdaptive: return "adaptive";
  }
  return "?";
}

ThresholdController::ThresholdController(ThresholdPolicy policy, const phy::AbicmTable* table,
                                         std::uint32_t sample_m, std::size_t arm_length)
    : policy_(policy),
      table_(table),
      monitor_(sample_m),
      arm_length_(arm_length),
      threshold_(table != nullptr ? table->highest() : 0) {
  if (table_ == nullptr) throw std::invalid_argument("ThresholdController: null mode table");
}

void ThresholdController::on_arrival(std::size_t queue_length) {
  if (policy_ != ThresholdPolicy::kAdaptive) return;
  const auto variation = monitor_.on_arrival(queue_length);
  // Fig 6: below Q_threshold the arrival is a no-op ("null") — the
  // threshold keeps whatever class the last congestion episode left it.
  if (queue_length < arm_length_) return;
  if (!variation.has_value()) return;  // adjustment happens on sampling epochs
  if (*variation >= 0.0) {
    if (threshold_ > 0) {
      --threshold_;
      ++lower_events_;
    }
  } else {
    if (threshold_ != table_->highest()) {
      threshold_ = table_->highest();
      ++raise_events_;
    }
  }
}

bool ThresholdController::permits(double csi_db) const noexcept {
  if (policy_ == ThresholdPolicy::kNone) return true;
  return csi_db >= table_->threshold_snr_db(threshold_);
}

double ThresholdController::threshold_snr_db() const {
  return table_->threshold_snr_db(threshold_);
}

void ThresholdController::reset() noexcept {
  threshold_ = table_->highest();
  monitor_.reset();
}

}  // namespace caem::queueing
