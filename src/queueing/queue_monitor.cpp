#include "queueing/queue_monitor.hpp"

#include <stdexcept>

namespace caem::queueing {

QueueMonitor::QueueMonitor(std::uint32_t sample_every_m) : sample_every_m_(sample_every_m) {
  if (sample_every_m == 0) throw std::invalid_argument("QueueMonitor: m must be >= 1");
}

std::optional<double> QueueMonitor::on_arrival(std::size_t queue_length) {
  if (++arrivals_since_sample_ < sample_every_m_) return std::nullopt;
  arrivals_since_sample_ = 0;
  const double sample = static_cast<double>(queue_length);
  ++samples_;
  if (last_sample_.has_value()) {
    variation_ = sample - *last_sample_;
  }
  last_sample_ = sample;
  return variation_;
}

void QueueMonitor::reset() noexcept {
  arrivals_since_sample_ = 0;
  last_sample_.reset();
  variation_.reset();
  samples_ = 0;
}

}  // namespace caem::queueing
