#include "queueing/packet.hpp"

// Packet is a plain aggregate; this translation unit exists so the module
// has a home for future non-inline helpers and keeps the build layout
// uniform (one .cpp per header).
namespace caem::queueing {}
