// packet_queue.hpp — a sensor's transmit buffer.
//
// Bounded FIFO (Table II: buffer size 50 packets) with drop-tail
// overflow and full accounting: every packet that enters is eventually
// classified as delivered, dropped(reason), or still-queued, and the
// integration tests assert that these tallies balance.
#pragma once

#include <cstdint>
#include <functional>

#include "queueing/packet.hpp"
#include "util/ring_buffer.hpp"

namespace caem::queueing {

class PacketQueue {
 public:
  /// Fired when an arriving packet is dropped because the buffer is full.
  using OverflowCallback = std::function<void(const Packet&, double now_s)>;

  explicit PacketQueue(std::size_t capacity);

  /// Enqueue an arrival; returns false (and reports overflow) when full.
  bool push(const Packet& packet, double now_s);

  /// Packet at the head (next to transmit).  Throws when empty.
  [[nodiscard]] const Packet& head() const { return buffer_.front(); }

  /// Mutable access to the head's retry counter.
  Packet& head_mutable() { return buffer_.front(); }

  /// Remove and return the head.  Throws when empty.
  Packet pop();

  /// Re-queue a packet at the head (a frame that failed on air keeps its
  /// place in line).  Returns false when the buffer is full.
  bool requeue_front(const Packet& packet);

  /// i-th queued packet from the head (burst assembly peeks ahead).
  [[nodiscard]] const Packet& peek(std::size_t i) const { return buffer_.at(i); }

  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }
  [[nodiscard]] bool empty() const noexcept { return buffer_.empty(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return buffer_.capacity(); }

  [[nodiscard]] std::uint64_t total_arrivals() const noexcept { return arrivals_; }
  [[nodiscard]] std::uint64_t overflow_drops() const noexcept { return overflow_drops_; }

  void set_overflow_callback(OverflowCallback callback) { on_overflow_ = std::move(callback); }

  /// Mirror the queue depth into an externally owned slot (the network's
  /// SoA hot-state array) on every mutation, so census paths can walk a
  /// contiguous array instead of chasing per-node pointers.  Pass nullptr
  /// to unbind.  The slot must outlive the queue (or be unbound first).
  void set_depth_mirror(std::uint32_t* slot) noexcept {
    depth_mirror_ = slot;
    if (slot) *slot = static_cast<std::uint32_t>(buffer_.size());
  }

  /// Drop every queued packet (node death / end of run), invoking
  /// `sink(packet)` for each so the caller can account for them.
  void drain(const std::function<void(const Packet&)>& sink);

 private:
  void sync_mirror() noexcept {
    if (depth_mirror_) *depth_mirror_ = static_cast<std::uint32_t>(buffer_.size());
  }

  util::RingBuffer<Packet> buffer_;
  std::uint64_t arrivals_ = 0;
  std::uint64_t overflow_drops_ = 0;
  OverflowCallback on_overflow_;
  std::uint32_t* depth_mirror_ = nullptr;
};

}  // namespace caem::queueing
