// packet.hpp — the unit of sensed data moving through the system.
#pragma once

#include <cstddef>
#include <cstdint>

namespace caem::queueing {

/// Why a packet left the system without being delivered.
enum class DropReason {
  kBufferOverflow,   ///< arrival found the buffer full
  kRetryExhausted,   ///< max retransmissions (6) exceeded
  kNodeDeath,        ///< the source node's battery depleted
  kEndOfRun,         ///< still queued when the simulation ended
  kUnreachable,      ///< no alive route to the sink within radio range
};

/// Number of DropReason values (sizes per-reason counters).
inline constexpr std::size_t kDropReasonCount = 5;

struct Packet {
  std::uint64_t id = 0;        ///< globally unique, assigned at generation
  std::uint32_t source = 0;    ///< generating node
  double created_s = 0.0;      ///< generation timestamp
  double payload_bits = 2048;  ///< application payload (Table II: 2 kbit)
  std::uint32_t retries = 0;   ///< transmission attempts that failed so far
};

}  // namespace caem::queueing
