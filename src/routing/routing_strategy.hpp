// routing_strategy.hpp — pluggable uplink path selection.
//
// When a run's uplink is routed (the protocol spec supplies a strategy
// or the config sets any routing.* knob), every packet that reaches a
// cluster head — or leaves a clusterless sensor — is planned into a hop
// chain: zero or more relay CHs followed by the final leg to the sink.
// The network executes the chain, charging each leg at its true
// pairwise distance through the run's UplinkEnergyModel; the strategy
// only decides the path.
//
// Three strategies ship:
//   * DirectUplink     — one leg straight to the sink (legacy shape,
//                        the default everywhere).
//   * GreedyGeographic — next hop = the alive CH closest to the sink
//                        among those strictly closer than the current
//                        holder, taken when it saves energy (UtilCache's
//                        cost/benefit rule: relay only when
//                        tx(hop) + rx + tx(rest) < tx(direct)) or when
//                        the sink is out of radio range and the hop is
//                        the only way to make progress.
//   * ChRelayChain     — reachability-driven nearest-neighbor hopping:
//                        while the sink is out of range, hop to the
//                        nearest strictly-closer CH, at most max_hops
//                        legs, then uplink.
//
// A plan that cannot reach the sink (partitioned network) comes back
// `reachable == false`; the network books the packet as a
// DropReason::kUnreachable drop — never a hang, never a free delivery.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "channel/mobility.hpp"
#include "channel/spatial_grid.hpp"
#include "energy/uplink_energy_model.hpp"

namespace caem::routing {

/// Where the uplink terminates.  Geometric sinks sit at a point in the
/// field (routing.sink_x_m/sink_y_m) so distance varies per node;
/// the legacy virtual sink is a fixed bs_distance_m from everyone, so
/// no relay can ever be "closer" and every strategy degenerates to
/// direct — exactly the old physics.
struct SinkModel {
  bool geometric = false;
  channel::Vec2 position{0.0, 0.0};  ///< valid when geometric
  double fixed_distance_m = 120.0;   ///< virtual sink: every node this far out
  double range_m = 0.0;              ///< radio reach per leg; 0 = unlimited

  [[nodiscard]] double distance_from(channel::Vec2 p) const noexcept {
    return geometric ? channel::distance_m(p, position) : fixed_distance_m;
  }
  [[nodiscard]] bool leg_in_range(double distance_m) const noexcept {
    return range_m <= 0.0 || distance_m <= range_m;
  }
};

/// The alive cluster heads a planner may relay through, with a spatial
/// index over their positions.  The network rebuilds it at each round
/// boundary; mid-round deaths are caught through the node-indexed alive
/// array handed to plan_uplink.
struct RelaySet {
  std::vector<std::uint32_t> ids;        ///< node ids of the round's CHs
  std::vector<channel::Vec2> positions;  ///< aligned with ids
  std::unique_ptr<channel::SpatialGrid> grid;  ///< over positions; null when empty

  void rebuild(std::vector<std::uint32_t> new_ids, std::vector<channel::Vec2> new_positions);
  void clear();
  [[nodiscard]] bool empty() const noexcept { return ids.empty(); }
};

/// One planned uplink: the relay CHs to traverse, in order, before the
/// final leg to the sink.  `reachable == false` means no chain exists
/// within radio range — the packet must book as an unreachable drop.
struct UplinkPlan {
  std::vector<std::uint32_t> relays;
  bool reachable = true;
};

class RoutingStrategy {
 public:
  virtual ~RoutingStrategy() = default;

  /// Plan the hop chain for one uplink.  `source` is excluded from the
  /// relay candidates (a CH uplinking its own aggregate sits in the
  /// relay set itself); `alive` is the network's node-indexed liveness
  /// array, battery-exact at call time.  `model` prices the legs for
  /// cost/benefit decisions (per-bit basis).
  [[nodiscard]] virtual UplinkPlan plan_uplink(std::uint32_t source,
                                               channel::Vec2 source_pos,
                                               const RelaySet& relays,
                                               const std::vector<std::uint8_t>& alive,
                                               const SinkModel& sink,
                                               const energy::UplinkEnergyModel& model) const = 0;

  /// Short label for `caem protocols` and diagnostics.
  [[nodiscard]] virtual const char* name() const = 0;
};

/// One leg straight to the sink; unreachable when that leg is out of
/// radio range.  The default for every registered protocol.
class DirectUplink final : public RoutingStrategy {
 public:
  [[nodiscard]] UplinkPlan plan_uplink(std::uint32_t source, channel::Vec2 source_pos,
                                       const RelaySet& relays,
                                       const std::vector<std::uint8_t>& alive,
                                       const SinkModel& sink,
                                       const energy::UplinkEnergyModel& model) const override;
  [[nodiscard]] const char* name() const override { return "direct"; }
};

/// Greedy geographic forwarding with UtilCache's cost/benefit rule.
class GreedyGeographic final : public RoutingStrategy {
 public:
  [[nodiscard]] UplinkPlan plan_uplink(std::uint32_t source, channel::Vec2 source_pos,
                                       const RelaySet& relays,
                                       const std::vector<std::uint8_t>& alive,
                                       const SinkModel& sink,
                                       const energy::UplinkEnergyModel& model) const override;
  [[nodiscard]] const char* name() const override { return "greedy-geographic"; }
};

/// CH -> CH nearest-neighbor chains, at most `max_hops` relay legs.
class ChRelayChain final : public RoutingStrategy {
 public:
  explicit ChRelayChain(std::uint32_t max_hops) noexcept : max_hops_(max_hops) {}
  [[nodiscard]] UplinkPlan plan_uplink(std::uint32_t source, channel::Vec2 source_pos,
                                       const RelaySet& relays,
                                       const std::vector<std::uint8_t>& alive,
                                       const SinkModel& sink,
                                       const energy::UplinkEnergyModel& model) const override;
  [[nodiscard]] const char* name() const override { return "ch-relay-chain"; }

 private:
  std::uint32_t max_hops_;
};

/// Build the strategy the config's routing.kind names ("direct",
/// "greedy", "chain").  Throws std::invalid_argument on any other kind
/// so a typo can never silently run direct.
[[nodiscard]] std::unique_ptr<RoutingStrategy> make_routing_strategy(const std::string& kind,
                                                                     std::uint32_t max_hops);

}  // namespace caem::routing
