#include "routing/routing_strategy.hpp"

#include <stdexcept>
#include <utility>

namespace caem::routing {

void RelaySet::rebuild(std::vector<std::uint32_t> new_ids,
                       std::vector<channel::Vec2> new_positions) {
  if (new_ids.size() != new_positions.size()) {
    throw std::invalid_argument("RelaySet: ids/positions size mismatch");
  }
  ids = std::move(new_ids);
  positions = std::move(new_positions);
  grid = ids.empty() ? nullptr
                     : std::make_unique<channel::SpatialGrid>(positions,
                                                              channel::auto_bin_m(positions));
}

void RelaySet::clear() {
  ids.clear();
  positions.clear();
  grid = nullptr;
}

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// The best relay candidate one hop out from `cur_pos`: alive, not the
/// holder or the original source, strictly closer to the sink, within
/// `radius`.  "Best" orders by `key` (sink distance for greedy, hop
/// distance for chains) with the node id as the deterministic
/// tie-break, independent of grid visit order.
struct Candidate {
  std::size_t slot = kNone;  ///< index into relays.ids/positions
  double key = 0.0;
  double hop_d = 0.0;
  double sink_d = 0.0;
};

template <typename KeyFn>
Candidate best_candidate(std::uint32_t source, std::uint32_t cur, channel::Vec2 cur_pos,
                         double cur_sink_d, double radius, const RelaySet& relays,
                         const std::vector<std::uint8_t>& alive, const SinkModel& sink,
                         KeyFn&& key_of) {
  Candidate best;
  if (!relays.grid) return best;
  relays.grid->for_each_in_range(cur_pos, radius, [&](std::size_t k, double hop_d) {
    const std::uint32_t id = relays.ids[k];
    if (id == cur || id == source || !alive[id]) return;
    const double sink_d = sink.distance_from(relays.positions[k]);
    if (sink_d >= cur_sink_d) return;  // must make strict progress
    const double key = key_of(hop_d, sink_d);
    if (best.slot == kNone || key < best.key ||
        (key == best.key && id < relays.ids[best.slot])) {
      best = Candidate{k, key, hop_d, sink_d};
    }
  });
  return best;
}

}  // namespace

UplinkPlan DirectUplink::plan_uplink(std::uint32_t /*source*/, channel::Vec2 source_pos,
                                     const RelaySet& /*relays*/,
                                     const std::vector<std::uint8_t>& /*alive*/,
                                     const SinkModel& sink,
                                     const energy::UplinkEnergyModel& /*model*/) const {
  UplinkPlan plan;
  plan.reachable = sink.leg_in_range(sink.distance_from(source_pos));
  return plan;
}

UplinkPlan GreedyGeographic::plan_uplink(std::uint32_t source, channel::Vec2 source_pos,
                                         const RelaySet& relays,
                                         const std::vector<std::uint8_t>& alive,
                                         const SinkModel& sink,
                                         const energy::UplinkEnergyModel& model) const {
  UplinkPlan plan;
  std::uint32_t cur = source;
  channel::Vec2 cur_pos = source_pos;
  double cur_d = sink.distance_from(cur_pos);
  // Strict progress toward the sink every hop bounds the chain by the
  // relay count; the loop guard is belt-and-braces.
  for (std::size_t guard = 0; guard <= relays.ids.size(); ++guard) {
    const bool direct_ok = sink.leg_in_range(cur_d);
    // A hop must fit the radio range; with unlimited range, a hop
    // longer than the remaining direct leg already costs more than
    // finishing, so it can never pass the benefit test — prune at cur_d.
    const double radius = sink.range_m > 0.0 ? sink.range_m : cur_d;
    const Candidate next =
        best_candidate(source, cur, cur_pos, cur_d, radius, relays, alive, sink,
                       [](double /*hop_d*/, double sink_d) { return sink_d; });
    if (next.slot == kNone) break;
    if (direct_ok) {
      // UtilCache's rule, per bit: relay only when the energy spent on
      // the hop + relay receive + the relay's own uplink undercuts
      // shouting at the sink from here.
      const double relayed = model.tx_cost_j(1.0, next.hop_d) + model.rx_cost_j(1.0) +
                             model.tx_cost_j(1.0, next.sink_d);
      if (relayed >= model.tx_cost_j(1.0, cur_d)) break;
    }
    plan.relays.push_back(relays.ids[next.slot]);
    cur = relays.ids[next.slot];
    cur_pos = relays.positions[next.slot];
    cur_d = next.sink_d;
  }
  plan.reachable = sink.leg_in_range(cur_d);
  if (!plan.reachable) plan.relays.clear();
  return plan;
}

UplinkPlan ChRelayChain::plan_uplink(std::uint32_t source, channel::Vec2 source_pos,
                                     const RelaySet& relays,
                                     const std::vector<std::uint8_t>& alive,
                                     const SinkModel& sink,
                                     const energy::UplinkEnergyModel& /*model*/) const {
  UplinkPlan plan;
  std::uint32_t cur = source;
  channel::Vec2 cur_pos = source_pos;
  double cur_d = sink.distance_from(cur_pos);
  // Hop only while the sink is out of reach: the chain exists to buy
  // reachability, not to shave energy (that is GreedyGeographic's job).
  while (!sink.leg_in_range(cur_d) && plan.relays.size() < max_hops_) {
    const double radius = sink.range_m > 0.0 ? sink.range_m : cur_d;
    const Candidate next =
        best_candidate(source, cur, cur_pos, cur_d, radius, relays, alive, sink,
                       [](double hop_d, double /*sink_d*/) { return hop_d; });
    if (next.slot == kNone) break;
    plan.relays.push_back(relays.ids[next.slot]);
    cur = relays.ids[next.slot];
    cur_pos = relays.positions[next.slot];
    cur_d = next.sink_d;
  }
  plan.reachable = sink.leg_in_range(cur_d);
  if (!plan.reachable) plan.relays.clear();
  return plan;
}

std::unique_ptr<RoutingStrategy> make_routing_strategy(const std::string& kind,
                                                       std::uint32_t max_hops) {
  if (kind == "direct") return std::make_unique<DirectUplink>();
  if (kind == "greedy") return std::make_unique<GreedyGeographic>();
  if (kind == "chain") return std::make_unique<ChRelayChain>(max_hops);
  throw std::invalid_argument("routing.kind '" + kind +
                              "' unknown (valid: direct, greedy, chain)");
}

}  // namespace caem::routing
