// forest_monitoring.cpp — the paper's motivating scenario: sensors
// scattered in a forest report environmental readings for months on one
// battery.  This example runs each protocol until the network dies and
// reports the lifetime story: average remaining energy over time, first
// node death, and network death (20 % exhausted), i.e. a miniature of
// the paper's Figures 8 and 9.
//
//   ./forest_monitoring [key=value ...]   e.g. initial_energy_j=5
#include <iostream>
#include <vector>

#include "core/simulation_runner.hpp"
#include "util/table_writer.hpp"

int main(int argc, char** argv) {
  using namespace caem;

  core::NetworkConfig config;
  // Forest deployment: modest report rate, strong shadowing from canopy.
  config.traffic_rate_pps = 5.0;
  config.channel.shadowing_sigma_db = 6.0;
  config.channel.path_loss_exponent = 3.2;
  try {
    std::vector<std::string> args(argv + 1, argv + argc);
    config.apply_overrides(util::Config::from_args(args));
  } catch (const std::exception& error) {
    std::cerr << "bad arguments: " << error.what() << "\n";
    return 1;
  }

  core::RunOptions options;
  options.max_sim_s = 4000.0;
  options.run_to_death = true;

  std::cout << "Forest monitoring: " << config.node_count << " nodes, "
            << config.traffic_rate_pps << " reports/s/node, "
            << config.initial_energy_j << " J batteries\n\n";

  std::vector<core::RunResult> runs;
  for (const core::Protocol protocol : core::paper_protocols()) {
    runs.push_back(core::SimulationRunner::run(config, protocol, /*seed=*/7, options));
  }

  // Remaining-energy trace at a coarse grid (Fig 8 in miniature).
  util::TableWriter energy({"t (s)", "pure-leach J", "scheme1 J", "scheme2 J"});
  for (double t = 0.0; t <= 600.0; t += 100.0) {
    energy.new_row().cell(t, 0);
    for (const auto& run : runs) {
      energy.cell(run.avg_remaining_energy.value_at(t), 3);
    }
  }
  std::cout << "Average remaining energy per node:\n";
  energy.render(std::cout);

  util::TableWriter life({"protocol", "first death s", "network death s", "delivery%",
                          "packets delivered"});
  for (const auto& run : runs) {
    life.new_row()
        .cell(std::string(core::to_string(run.protocol)))
        .cell(run.lifetime.first_death_s, 1)
        .cell(run.lifetime.network_death_s, 1)
        .cell(100.0 * run.delivery_rate, 1)
        .cell(static_cast<std::size_t>(run.delivered_air));
  }
  std::cout << "\nLifetime (network dead at " << config.dead_fraction * 100 << "% exhausted):\n";
  life.render(std::cout);

  const double base = runs[0].lifetime.network_death_s;
  if (base > 0.0) {
    std::cout << "\nLifetime gain vs pure LEACH: scheme1 "
              << 100.0 * (runs[1].lifetime.network_death_s / base - 1.0) << "%, scheme2 "
              << 100.0 * (runs[2].lifetime.network_death_s / base - 1.0) << "%\n";
  }
  return 0;
}
