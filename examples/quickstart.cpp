// quickstart.cpp — the 60-second tour of the CAEM library.
//
// Builds the paper's default 100-node network, runs all three protocols
// for a short horizon, and prints the headline comparison: energy per
// delivered packet, delivery rate and mean delay.
//
//   ./quickstart [key=value ...]      e.g.  ./quickstart traffic_rate_pps=10
#include <iostream>
#include <vector>

#include "core/experiment.hpp"
#include "core/simulation_runner.hpp"
#include "util/table_writer.hpp"

int main(int argc, char** argv) {
  using namespace caem;

  core::NetworkConfig config;
  try {
    std::vector<std::string> args(argv + 1, argv + argc);
    config.apply_overrides(util::Config::from_args(args));
  } catch (const std::exception& error) {
    std::cerr << "bad arguments: " << error.what() << "\n";
    return 1;
  }

  core::RunOptions options;
  options.max_sim_s = 120.0;

  std::cout << "CAEM quickstart: " << config.node_count << " nodes, "
            << config.traffic_rate_pps << " pkt/s/node, horizon " << options.max_sim_s
            << " s\n\n";

  util::TableWriter table({"protocol", "delivered", "delivery%", "mJ/packet",
                           "mean delay ms", "collisions", "consumed J"});
  for (const core::Protocol protocol : core::paper_protocols()) {
    const core::RunResult run =
        core::SimulationRunner::run(config, protocol, /*seed=*/42, options);
    table.new_row()
        .cell(std::string(core::to_string(protocol)))
        .cell(static_cast<std::size_t>(run.delivered_air))
        .cell(100.0 * run.delivery_rate, 1)
        .cell(1e3 * run.energy_per_delivered_packet_j, 3)
        .cell(1e3 * run.mean_delay_s, 1)
        .cell(static_cast<std::size_t>(run.collisions))
        .cell(run.total_consumed_j, 2);
  }
  table.render(std::cout);

  std::cout << "\nCAEM (scheme 1/2) should spend visibly fewer mJ per packet than\n"
               "pure LEACH: that is the paper's headline claim.  See bench/ for\n"
               "the full figure reproductions.\n";
  return 0;
}
