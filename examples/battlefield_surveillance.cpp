// battlefield_surveillance.cpp — bursty event traffic and fairness.
//
// Surveillance sensors are quiet until something happens, then report a
// volley of packets.  Bursts stress exactly the part of CAEM the paper
// worries about: Scheme 2 starves nodes whose channel is bad while their
// queues fill, Scheme 1's adaptive threshold relieves them.  This example
// uses the BurstSource workload and compares queue fairness (the paper's
// Fig 12 metric) and buffer overflow drops across protocols.
//
//   ./battlefield_surveillance [key=value ...]
#include <iostream>
#include <vector>

#include "core/simulation_runner.hpp"
#include "util/table_writer.hpp"

int main(int argc, char** argv) {
  using namespace caem;

  core::NetworkConfig config;
  config.traffic_kind = "burst";
  config.traffic_rate_pps = 10.0;  // mean aggregate rate; bursts of ~5
  config.buffer_capacity = 50;
  try {
    std::vector<std::string> args(argv + 1, argv + argc);
    config.apply_overrides(util::Config::from_args(args));
  } catch (const std::exception& error) {
    std::cerr << "bad arguments: " << error.what() << "\n";
    return 1;
  }

  core::RunOptions options;
  options.max_sim_s = 200.0;

  std::cout << "Battlefield surveillance: burst traffic, mean " << config.traffic_rate_pps
            << " pkt/s/node, buffer " << config.buffer_capacity << " packets\n\n";

  util::TableWriter table({"protocol", "queue stddev", "overflow drops", "retry drops",
                           "delivery%", "p95 delay ms", "mJ/packet"});
  for (const core::Protocol protocol : core::paper_protocols()) {
    const core::RunResult run =
        core::SimulationRunner::run(config, protocol, /*seed=*/1234, options);
    table.new_row()
        .cell(std::string(core::to_string(protocol)))
        .cell(run.mean_queue_stddev, 2)
        .cell(static_cast<std::size_t>(run.dropped_overflow))
        .cell(static_cast<std::size_t>(run.dropped_retry))
        .cell(100.0 * run.delivery_rate, 1)
        .cell(1e3 * run.p95_delay_s, 1)
        .cell(1e3 * run.energy_per_delivered_packet_j, 3);
  }
  table.render(std::cout);

  std::cout << "\nExpect scheme2 to show the worst fairness (highest queue stddev /\n"
               "overflow) and scheme1 to trade a little energy for a smoother\n"
               "queue distribution — the paper's energy/fairness trade-off.\n";
  return 0;
}
