// channel_explorer.cpp — a look inside the channel + PHY substrate.
//
// Samples one fading link over time, prints the SNR distribution, the
// ABICM mode occupancy at several distances, and the per-mode packet
// error rate curve — the physical ingredients behind CAEM's gains.
//
//   ./channel_explorer [seed]
#include <cstdlib>
#include <iostream>

#include "channel/link_manager.hpp"
#include "phy/error_model.hpp"
#include "phy/frame.hpp"
#include "sim/rng_registry.hpp"
#include "util/histogram.hpp"
#include "util/table_writer.hpp"

int main(int argc, char** argv) {
  using namespace caem;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2005;

  sim::RngRegistry rng(seed);
  channel::ChannelConfig channel_config;
  channel::LinkManager links(channel_config, &rng);
  const channel::LinkBudget budget{0.0, channel::noise_floor_dbm(2e6, 10.0)};
  const phy::AbicmTable table;
  const phy::PacketErrorModel error_model(&table);

  // --- SNR trace of a 30 m link, sampled every 10 ms for 60 s ---
  const auto a = links.add_static_node({0.0, 0.0});
  const auto b = links.add_static_node({30.0, 0.0});
  util::Histogram snr_hist(-10.0, 40.0, 25);
  std::size_t outage = 0, top_mode = 0, samples = 0;
  for (double t = 0.0; t < 60.0; t += 0.01) {
    const double snr = links.snr_db(a, b, t, budget);
    snr_hist.add(snr);
    ++samples;
    const auto mode = table.mode_for_snr(snr);
    if (!mode.has_value()) ++outage;
    else if (*mode == table.highest()) ++top_mode;
  }
  std::cout << "Instantaneous SNR distribution of a 30 m link (60 s, Jakes fading,\n"
            << "lognormal shadowing, log-distance path loss):\n"
            << snr_hist.to_string(40) << "\n";
  std::cout << "outage (below 250 kbps mode): "
            << 100.0 * static_cast<double>(outage) / static_cast<double>(samples)
            << "%   2 Mbps-capable: "
            << 100.0 * static_cast<double>(top_mode) / static_cast<double>(samples) << "%\n\n";

  // --- mode occupancy vs distance ---
  util::TableWriter occupancy(
      {"distance m", "outage%", "250k%", "450k%", "1M%", "2M%", "mean air ms/packet"});
  const phy::FrameTiming timing(phy::FrameFormat{}, &table);
  for (const double distance : {10.0, 20.0, 30.0, 40.0, 60.0}) {
    const auto node = links.add_static_node({0.0, distance});
    std::array<double, phy::kModeCount> share{};
    double out = 0.0, air = 0.0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
      const double t = 0.025 * i;
      const double snr = links.snr_db(a, node, t, budget);
      const auto mode = table.mode_for_snr(snr);
      if (!mode.has_value()) {
        out += 1.0;
        air += timing.frame_air_time_s(0);  // a blind sender would burn this
      } else {
        share[*mode] += 1.0;
        air += timing.frame_air_time_s(*mode);
      }
    }
    occupancy.new_row().cell(distance, 0).cell(100.0 * out / n, 1);
    for (const double s : share) occupancy.cell(100.0 * s / n, 1);
    occupancy.cell(1e3 * air / n, 3);
  }
  std::cout << "ABICM mode occupancy vs link distance:\n";
  occupancy.render(std::cout);

  // --- PER curves ---
  util::TableWriter per({"SNR dB", "250k PER", "450k PER", "1M PER", "2M PER"});
  for (double snr = 2.0; snr <= 24.0; snr += 2.0) {
    per.new_row().cell(snr, 0);
    for (phy::ModeIndex mode = 0; mode < phy::kModeCount; ++mode) {
      per.cell(error_model.packet_error_rate(mode, snr, 2048.0), 4);
    }
  }
  std::cout << "\nPacket error rate (2 kbit payload) vs SNR:\n";
  per.render(std::cout);
  return 0;
}
