// bench_common.hpp — shared plumbing for the figure-reproduction benches.
//
// Every bench accepts `key=value` overrides (see NetworkConfig::
// apply_overrides) plus:
//   seed=<n>           base seed (default 2005)
//   reps=<n>           replications per point (default 2)
//   fast=1             shrink the sweep for smoke runs
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/simulation_runner.hpp"
#include "scenario/engine.hpp"
#include "util/config.hpp"
#include "util/table_writer.hpp"

namespace caem::bench {

struct BenchArgs {
  core::NetworkConfig config;
  std::uint64_t seed = 2005;
  std::size_t reps = 2;
  bool fast = false;
};

/// Parse bench CLI overrides.  Exits non-zero on malformed tokens and on
/// any key no getter consumed: a typo'd override (`dopler_hz=5`) must
/// never silently report results under the wrong provenance.
inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  std::vector<std::string> tokens(argv + 1, argv + argc);
  try {
    const util::Config overrides = util::Config::from_args(tokens);
    args.seed = static_cast<std::uint64_t>(overrides.get_int("seed", 2005));
    args.reps = static_cast<std::size_t>(overrides.get_int("reps", 2));
    args.fast = overrides.get_bool("fast", false);
    args.config.apply_overrides(overrides);
    const std::vector<std::string> typos = overrides.unconsumed();
    if (!typos.empty()) {
      std::cerr << "unknown override key(s):";
      for (const std::string& key : typos) std::cerr << " '" << key << "'";
      std::cerr << "\n";
      std::exit(1);
    }
  } catch (const std::exception& error) {
    std::cerr << "bad arguments: " << error.what() << "\n";
    std::exit(1);
  }
  return args;
}

/// Mean over a replicated point (folds -1 lifetimes as the horizon).
using core::Replicated;
using core::RunOptions;
using core::RunResult;

/// Run every protocol at one config, replicated, on ONE flattened job
/// queue (no per-protocol barrier — all protocols' replications
/// interleave freely across the pool).  Results are identical to the
/// old sequential run_replicated loop: job (protocol, rep) always runs
/// seed `seed + rep`, and fold_runs is order-deterministic.
inline std::vector<Replicated> all_protocols(const core::NetworkConfig& config,
                                             std::uint64_t seed, std::size_t reps,
                                             const RunOptions& options) {
  scenario::ScenarioSpec spec;
  spec.base_config = config;
  spec.base_seed = seed;
  spec.replications = reps;
  spec.options = options;
  const scenario::ScenarioResult result = scenario::run_scenario(spec);
  std::vector<Replicated> out;
  out.reserve(result.points[0].protocols.size());
  for (const scenario::ProtocolResult& entry : result.points[0].protocols) {
    out.push_back(entry.replicated);
  }
  return out;
}

inline void print_header(const std::string& title, const std::string& paper_reference) {
  std::cout << "==== " << title << " ====\n"
            << "reproduces: " << paper_reference << "\n\n";
}

}  // namespace caem::bench
