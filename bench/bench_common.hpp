// bench_common.hpp — shared plumbing for the figure-reproduction benches.
//
// Every bench accepts `key=value` overrides (see NetworkConfig::
// apply_overrides) plus:
//   seed=<n>           base seed (default 2005)
//   reps=<n>           replications per point (default 2)
//   fast=1             shrink the sweep for smoke runs
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/simulation_runner.hpp"
#include "util/config.hpp"
#include "util/table_writer.hpp"

namespace caem::bench {

struct BenchArgs {
  core::NetworkConfig config;
  std::uint64_t seed = 2005;
  std::size_t reps = 2;
  bool fast = false;
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  std::vector<std::string> tokens(argv + 1, argv + argc);
  const util::Config overrides = util::Config::from_args(tokens);
  args.seed = static_cast<std::uint64_t>(overrides.get_int("seed", 2005));
  args.reps = static_cast<std::size_t>(overrides.get_int("reps", 2));
  args.fast = overrides.get_bool("fast", false);
  args.config.apply_overrides(overrides);
  return args;
}

/// Mean over a replicated point (folds -1 lifetimes as the horizon).
using core::Replicated;
using core::RunOptions;
using core::RunResult;

/// Run every protocol at one config, replicated, in parallel.
inline std::vector<Replicated> all_protocols(const core::NetworkConfig& config,
                                             std::uint64_t seed, std::size_t reps,
                                             const RunOptions& options) {
  std::vector<Replicated> out;
  out.reserve(3);
  for (const core::Protocol protocol : core::kAllProtocols) {
    out.push_back(core::run_replicated(config, protocol, seed, reps, options));
  }
  return out;
}

inline void print_header(const std::string& title, const std::string& paper_reference) {
  std::cout << "==== " << title << " ====\n"
            << "reproduces: " << paper_reference << "\n\n";
}

}  // namespace caem::bench
