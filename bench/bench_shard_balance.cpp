// bench_shard_balance — static residue slices vs dynamic work-stealing
// claims on a deliberately skewed sweep, the acceptance harness for
// `caem run --worker` (scenario/work_queue.hpp).
//
// Workload: the skewed_fast scenario shape — ONE heavy cell (140 nodes)
// plus 36 near-equal light cells (20 nodes, traffic swept in lockstep),
// costing roughly light_total ≈ 3 x heavy.  That is the worst case for
// the legacy static `--shard=i/N` partition: the residue class that
// draws the heavy cell also draws a quarter of the lights, so its owner
// grinds on alone while the other shards idle.
//
// Measurement is COST-WEIGHTED SCHEDULE MAKESPAN, not wall clock: on a
// small or timeshared host (CI runs this on one core) N concurrent
// CPU-bound workers cannot show balance in wall time — total CPU work
// dominates.  Instead:
//
//   1. every cell is executed once, uncontended and single-threaded,
//      recording its measured cost (and the reference artifacts);
//   2. static makespan  = max over the 4 residue classes of the summed
//      measured cost of the cells `--shard=i/4` would assign them
//      (exact: the static partition is a pure function of job index);
//   3. dynamic makespan = max over 4 REAL `--worker` drains (threads in
//      this process, racing the real claim protocol on a fresh shared
//      cache) of the summed measured cost of the cells each one
//      actually claimed and executed — read back from the worker
//      telemetry markers.
//
// The exit code enforces the PR's acceptance bar: dynamic claiming must
// improve the makespan by >= 1.5x, and the merge of the worker-drained
// cache must render the summary byte-identically to the single-process
// reference.
//
// Usage: bench_shard_balance [--fast] [key=value ...]
//   workers=<n>   worker count (default 4; the static baseline uses it too)
//   sim_s=<t>     horizon per cell (default 2000 — cells die well before)
//   seed=<n>      master seed (default 2005)
//   json=<path>   output path (default BENCH_shard.json)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/config.hpp"
#include "core/protocol.hpp"
#include "core/simulation_runner.hpp"
#include "scenario/engine.hpp"
#include "scenario/scenario_spec.hpp"
#include "scenario/shard_manifest.hpp"
#include "scenario/sweep.hpp"
#include "util/config.hpp"

namespace {

using namespace caem;
namespace fs = std::filesystem;

/// The skewed_fast grid: heavy 140-node cell first, then 36 distinct
/// 20-node light cells (traffic 5.1 .. 8.6 in lockstep).
scenario::ScenarioSpec skewed_spec(std::uint64_t seed, double sim_s) {
  scenario::ScenarioSpec spec;
  spec.name = "bench-shard-balance";
  spec.protocols = {core::protocol_from_string("pure-leach")};
  spec.base_seed = seed;
  spec.replications = 1;
  spec.options.max_sim_s = sim_s;
  spec.options.run_to_death = false;
  std::string values = "list:140/5";
  for (int k = 0; k < 36; ++k) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), ",20/%.1f", 5.1 + 0.1 * k);
    values += buffer;
  }
  spec.axes = {scenario::parse_axis("node_count,traffic_rate_pps", values)};
  return spec;
}

std::string summary_csv(const scenario::ScenarioResult& result) {
  std::ostringstream out;
  scenario::summary_table(result).render_csv(out);
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token == "--fast") {
      fast = true;
    } else {
      tokens.push_back(token);
    }
  }
  std::uint64_t seed = 2005;
  double sim_s = 0.0;
  std::size_t workers = 4;
  std::string json_path = "BENCH_shard.json";
  try {
    const util::Config overrides = util::Config::from_args(tokens);
    fast = overrides.get_bool("fast", fast);
    seed = static_cast<std::uint64_t>(overrides.get_int("seed", 2005));
    sim_s = overrides.get_double("sim_s", 0.0);
    workers = static_cast<std::size_t>(overrides.get_int("workers", 4));
    json_path = overrides.get_string("json", json_path);
    const std::vector<std::string> typos = overrides.unconsumed();
    if (!typos.empty()) {
      std::cerr << "unknown override key(s):";
      for (const std::string& key : typos) std::cerr << " '" << key << "'";
      std::cerr << "\n";
      return 1;
    }
  } catch (const std::exception& error) {
    std::cerr << "bad arguments: " << error.what() << "\n";
    return 1;
  }
  if (workers < 2) {
    std::cerr << "workers must be >= 2 (a 1-worker drain has nothing to balance)\n";
    return 1;
  }
  // The cells die long before 2000 simulated seconds, so the fast
  // horizon changes nothing but documents the bench is already fast.
  if (sim_s <= 0.0) sim_s = fast ? 1500.0 : 2000.0;

  const scenario::ScenarioSpec base = skewed_spec(seed, sim_s);
  const std::vector<scenario::GridPoint> grid = scenario::expand_grid(base.axes);
  const std::size_t jobs = grid.size();

  std::printf("==== bench_shard_balance ====\n");
  std::printf("skewed sweep: %zu cell(s) (1 heavy + %zu light), %zu worker(s)\n", jobs,
              jobs - 1, workers);

  // -- 1. uncontended reference pass: per-cell measured costs + the
  //       byte-identity reference artifacts --
  std::vector<double> cost_ms(jobs, 0.0);
  double total_ms = 0.0;
  for (std::size_t i = 0; i < jobs; ++i) {
    const core::NetworkConfig config = base.config_at(grid[i]);
    const auto t0 = std::chrono::steady_clock::now();
    (void)core::SimulationRunner::run(config, base.protocols[0], base.base_seed, base.options);
    cost_ms[i] =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
    total_ms += cost_ms[i];
  }
  scenario::ScenarioSpec ref_spec = base;
  const scenario::ScenarioResult reference = scenario::run_scenario(ref_spec);
  const std::string reference_csv = summary_csv(reference);
  std::printf("reference pass: heavy %.0f ms, lights %.0f ms total (%.0f ms whole sweep)\n",
              cost_ms[0], total_ms - cost_ms[0], total_ms);

  // -- 2. static makespan: exact cost of the legacy --shard=i/N
  //       partition (job index residue classes) --
  std::vector<double> static_class_ms(workers, 0.0);
  for (std::size_t i = 0; i < jobs; ++i) static_class_ms[i % workers] += cost_ms[i];
  const double static_makespan_ms =
      *std::max_element(static_class_ms.begin(), static_class_ms.end());

  // -- 3. dynamic makespan: real --worker drains racing the claim
  //       protocol on a fresh shared cache --
  const fs::path scratch =
      fs::temp_directory_path() / ("bench_shard_cache_" + std::to_string(::getpid()));
  fs::remove_all(scratch);
  std::vector<scenario::ScenarioResult> worker_results(workers);
  {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        scenario::ScenarioSpec worker_spec = base;
        worker_spec.cache_dir = scratch.string();
        worker_spec.worker_mode = true;
        worker_spec.threads = 1;
        worker_results[w] = scenario::run_scenario(worker_spec);
      });
    }
    for (std::thread& thread : pool) thread.join();
  }

  // Read the telemetry markers back: which cells each worker actually
  // claimed and executed.
  const scenario::ShardManifest manifest(scratch.string(), worker_results[0].sweep_digest);
  const std::vector<scenario::WorkerMarker> reports = manifest.collect_workers();
  std::vector<double> dynamic_worker_ms;
  std::size_t dynamic_executed = 0;
  std::vector<std::size_t> execution_count(jobs, 0);
  for (const scenario::WorkerMarker& report : reports) {
    double sum = 0.0;
    for (const std::size_t job : report.stored) {
      sum += job < jobs ? cost_ms[job] : 0.0;
      if (job < jobs) ++execution_count[job];
    }
    dynamic_worker_ms.push_back(sum);
    dynamic_executed += report.stored.size();
  }
  const double dynamic_makespan_ms =
      dynamic_worker_ms.empty()
          ? 0.0
          : *std::max_element(dynamic_worker_ms.begin(), dynamic_worker_ms.end());
  const std::size_t covered = static_cast<std::size_t>(
      std::count_if(execution_count.begin(), execution_count.end(),
                    [](std::size_t n) { return n >= 1; }));
  const std::size_t duplicated = static_cast<std::size_t>(
      std::count_if(execution_count.begin(), execution_count.end(),
                    [](std::size_t n) { return n > 1; }));

  // -- 4. merge the worker-drained cache; summary must render
  //       byte-identically to the single-process reference --
  scenario::ScenarioSpec merge_spec = base;
  merge_spec.cache_dir = scratch.string();
  merge_spec.merge_shards = true;
  const scenario::ScenarioResult merged = scenario::run_scenario(merge_spec);
  const bool artifacts_identical = summary_csv(merged) == reference_csv;
  fs::remove_all(scratch);

  const double speedup =
      dynamic_makespan_ms > 0.0 ? static_makespan_ms / dynamic_makespan_ms : 0.0;
  const double threshold = 1.5;
  const bool balanced = speedup >= threshold;
  const bool complete = covered == jobs && merged.executed_jobs == 0;
  const bool pass = balanced && artifacts_identical && complete;

  std::printf("static  makespan: %8.0f ms (worst of %zu residue classes)\n", static_makespan_ms,
              workers);
  std::printf("dynamic makespan: %8.0f ms (worst of %zu worker drains)\n", dynamic_makespan_ms,
              reports.size());
  for (const scenario::WorkerMarker& report : reports) {
    double sum = 0.0;
    for (const std::size_t job : report.stored) sum += job < jobs ? cost_ms[job] : 0.0;
    std::printf("  worker %-34s %3zu cell(s) %8.0f ms, %zu stolen\n", report.token.c_str(),
                report.stored.size(), sum, report.stolen);
  }
  std::printf("speedup: %.2fx (threshold %.1fx) -> %s\n", speedup, threshold,
              balanced ? "balanced" : "NOT balanced");
  std::printf("coverage: %zu/%zu cell(s) executed once (%zu duplicated), merge re-ran %zu\n",
              covered, jobs, duplicated, merged.executed_jobs);
  std::printf("merge artifacts %s the single-process reference\n",
              artifacts_identical ? "MATCH" : "DIFFER FROM");

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"workload\": \"skewed sweep, 1 heavy (140 nodes) + %zu light (20 nodes) "
               "cells, pure-leach, %.0f s horizon\",\n"
               "  \"jobs\": %zu,\n"
               "  \"workers\": %zu,\n"
               "  \"heavy_cost_ms\": %.1f,\n"
               "  \"light_total_cost_ms\": %.1f,\n"
               "  \"static_makespan_ms\": %.1f,\n"
               "  \"dynamic_makespan_ms\": %.1f,\n"
               "  \"dynamic_executed_cells\": %zu,\n"
               "  \"duplicated_cells\": %zu,\n"
               "  \"speedup\": %.2f,\n"
               "  \"threshold\": %.1f,\n"
               "  \"artifacts_identical\": %s,\n"
               "  \"balanced\": %s,\n"
               "  \"pass\": %s\n"
               "}\n",
               jobs - 1, sim_s, jobs, workers, cost_ms[0], total_ms - cost_ms[0],
               static_makespan_ms, dynamic_makespan_ms, dynamic_executed, duplicated, speedup,
               threshold, artifacts_identical ? "true" : "false", balanced ? "true" : "false",
               pass ? "true" : "false");
  std::fclose(out);
  std::printf("\nBENCH_shard -> %s\n", json_path.c_str());
  return pass ? 0 : 1;
}
