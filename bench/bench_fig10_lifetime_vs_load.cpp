// bench_fig10_lifetime_vs_load — reproduces Figure 10: network lifetime
// versus added traffic load (packets generated per node per second).
//
// Paper shape: all curves fall with load; Scheme 2 stays on top; the gap
// between Scheme 1 and pure LEACH closes as the network saturates,
// because the adaptive threshold spends most of its time at the lowest
// class and Scheme 1 degenerates to a non-channel-adaptive protocol.
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace caem;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 10 — network lifetime vs traffic load",
                      "load sweep 5..30 pkt/s/node, lifetime = 20% dead");

  const std::vector<std::string> loads =
      args.fast ? std::vector<std::string>{"5", "15"}
                : std::vector<std::string>{"5", "10", "15", "20", "25", "30"};

  // Declarative sweep on the scenario engine: the whole (load x protocol
  // x rep) grid flattens into one job queue — same jobs and seeds as the
  // old hand-rolled loop, so the numbers are unchanged.  File-driven
  // equivalent: examples/scenarios/fig10_lifetime_vs_load.scn.
  scenario::ScenarioSpec spec;
  spec.name = "fig10-lifetime-vs-load";
  spec.base_config = args.config;
  spec.base_seed = args.seed;
  spec.replications = args.reps;
  spec.options.max_sim_s = args.fast ? 400.0 : 2500.0;
  spec.options.run_to_death = true;
  spec.axes.push_back(scenario::Axis{"traffic_rate_pps", loads});
  const scenario::ScenarioResult sweep = scenario::run_scenario(spec);

  util::TableWriter table({"load pkt/s", "pure-leach (s)", "caem-scheme1 (s)",
                           "caem-scheme2 (s)", "s1 gain %", "s2 gain %"});
  for (const scenario::PointResult& point : sweep.points) {
    double lifetime[3] = {0, 0, 0};
    for (std::size_t p = 0; p < point.protocols.size(); ++p) {
      for (const auto& run : point.protocols[p].replicated.runs) {
        lifetime[p] += run.lifetime.network_death_s >= 0 ? run.lifetime.network_death_s
                                                         : run.sim_end_s;
      }
      lifetime[p] /= static_cast<double>(args.reps);
    }
    table.new_row()
        .cell(point.config.traffic_rate_pps, 0)
        .cell(lifetime[0], 1)
        .cell(lifetime[1], 1)
        .cell(lifetime[2], 1)
        .cell(100.0 * (lifetime[1] / lifetime[0] - 1.0), 1)
        .cell(100.0 * (lifetime[2] / lifetime[0] - 1.0), 1);
  }
  table.render(std::cout);
  std::cout << "\npaper shape check: all columns decrease with load; scheme2 >= scheme1 >=\n"
               "pure-leach; the scheme1 gain column shrinks toward 0 at saturation.\n";
  return 0;
}
