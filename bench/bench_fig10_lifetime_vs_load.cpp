// bench_fig10_lifetime_vs_load — reproduces Figure 10: network lifetime
// versus added traffic load (packets generated per node per second).
//
// Paper shape: all curves fall with load; Scheme 2 stays on top; the gap
// between Scheme 1 and pure LEACH closes as the network saturates,
// because the adaptive threshold spends most of its time at the lowest
// class and Scheme 1 degenerates to a non-channel-adaptive protocol.
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace caem;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 10 — network lifetime vs traffic load",
                      "load sweep 5..30 pkt/s/node, lifetime = 20% dead");

  const std::vector<double> loads =
      args.fast ? std::vector<double>{5.0, 15.0} : std::vector<double>{5, 10, 15, 20, 25, 30};

  core::RunOptions options;
  options.max_sim_s = args.fast ? 400.0 : 2500.0;
  options.run_to_death = true;

  // One job per (load, protocol, rep): flatten for maximal parallelism.
  struct Job {
    double load;
    core::Protocol protocol;
    std::uint64_t seed;
  };
  std::vector<Job> jobs;
  for (const double load : loads) {
    for (const core::Protocol protocol : core::kAllProtocols) {
      for (std::size_t rep = 0; rep < args.reps; ++rep) {
        jobs.push_back({load, protocol, args.seed + rep});
      }
    }
  }
  const auto results = core::parallel_runs(jobs.size(), [&](std::size_t i) {
    core::NetworkConfig config = args.config;
    config.traffic_rate_pps = jobs[i].load;
    return core::SimulationRunner::run(config, jobs[i].protocol, jobs[i].seed, options);
  });

  util::TableWriter table({"load pkt/s", "pure-leach (s)", "caem-scheme1 (s)",
                           "caem-scheme2 (s)", "s1 gain %", "s2 gain %"});
  for (const double load : loads) {
    double lifetime[3] = {0, 0, 0};
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].load != load) continue;
      const int p = static_cast<int>(jobs[i].protocol);
      const auto& run = results[i];
      lifetime[p] += run.lifetime.network_death_s >= 0 ? run.lifetime.network_death_s
                                                       : run.sim_end_s;
    }
    for (double& value : lifetime) value /= static_cast<double>(args.reps);
    table.new_row()
        .cell(load, 0)
        .cell(lifetime[0], 1)
        .cell(lifetime[1], 1)
        .cell(lifetime[2], 1)
        .cell(100.0 * (lifetime[1] / lifetime[0] - 1.0), 1)
        .cell(100.0 * (lifetime[2] / lifetime[0] - 1.0), 1);
  }
  table.render(std::cout);
  std::cout << "\npaper shape check: all columns decrease with load; scheme2 >= scheme1 >=\n"
               "pure-leach; the scheme1 gain column shrinks toward 0 at saturation.\n";
  return 0;
}
