// bench_fig11_energy_per_packet — reproduces Figure 11: average energy
// consumed per successfully delivered packet versus traffic load, for
// pure LEACH and CAEM Scheme 1 (the paper omits Scheme 2 here because it
// is trivially the cheapest; we print it as an extra column).
//
// Paper shape: Scheme 1 sits 30-40% below pure LEACH; pure LEACH's curve
// *decreases* with load (bigger bursts amortise the radio startup);
// Scheme 1's rises slightly (congestion lowers its threshold), so the
// gap narrows as the load grows.
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace caem;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 11 — energy per delivered packet vs load",
                      "pure LEACH vs CAEM Scheme 1 (Scheme 2 as extra)");

  const std::vector<std::string> loads =
      args.fast ? std::vector<std::string>{"5", "20"}
                : std::vector<std::string>{"5", "10", "15", "20", "25", "30"};

  // Declarative sweep on the scenario engine (file-driven equivalent:
  // examples/scenarios/fig11_energy_per_packet.scn) — same jobs and
  // seeds as the old hand-rolled loop, so the numbers are unchanged.
  scenario::ScenarioSpec spec;
  spec.name = "fig11-energy-per-packet";
  spec.base_config = args.config;
  // Long-lived batteries: Fig 11 measures steady-state energy/packet,
  // not lifetime effects.
  spec.base_config.initial_energy_j = 1e6;
  spec.base_seed = args.seed;
  spec.replications = args.reps;
  spec.options.max_sim_s = args.fast ? 60.0 : 150.0;
  spec.axes.push_back(scenario::Axis{"traffic_rate_pps", loads});
  const scenario::ScenarioResult sweep = scenario::run_scenario(spec);

  util::TableWriter table({"load pkt/s", "pure-leach mJ/pkt", "scheme1 mJ/pkt",
                           "scheme2 mJ/pkt", "s1 saving %"});
  for (const scenario::PointResult& point : sweep.points) {
    double energy[3] = {0, 0, 0};
    for (std::size_t p = 0; p < point.protocols.size(); ++p) {
      for (const auto& run : point.protocols[p].replicated.runs) {
        energy[p] += run.energy_per_delivered_packet_j;
      }
      energy[p] = energy[p] / static_cast<double>(args.reps) * 1e3;
    }
    table.new_row()
        .cell(point.config.traffic_rate_pps, 0)
        .cell(energy[0], 3)
        .cell(energy[1], 3)
        .cell(energy[2], 3)
        .cell(100.0 * (1.0 - energy[1] / energy[0]), 1);
  }
  table.render(std::cout);
  std::cout << "\npaper shape check: the saving column sits near 30-40% at low load and\n"
               "shrinks as the load grows (scheme1 lowers its threshold more often).\n";
  return 0;
}
