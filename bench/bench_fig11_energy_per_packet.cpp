// bench_fig11_energy_per_packet — reproduces Figure 11: average energy
// consumed per successfully delivered packet versus traffic load, for
// pure LEACH and CAEM Scheme 1 (the paper omits Scheme 2 here because it
// is trivially the cheapest; we print it as an extra column).
//
// Paper shape: Scheme 1 sits 30-40% below pure LEACH; pure LEACH's curve
// *decreases* with load (bigger bursts amortise the radio startup);
// Scheme 1's rises slightly (congestion lowers its threshold), so the
// gap narrows as the load grows.
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace caem;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 11 — energy per delivered packet vs load",
                      "pure LEACH vs CAEM Scheme 1 (Scheme 2 as extra)");

  const std::vector<double> loads =
      args.fast ? std::vector<double>{5.0, 20.0} : std::vector<double>{5, 10, 15, 20, 25, 30};

  core::RunOptions options;
  options.max_sim_s = args.fast ? 60.0 : 150.0;

  struct Job {
    double load;
    core::Protocol protocol;
    std::uint64_t seed;
  };
  std::vector<Job> jobs;
  for (const double load : loads) {
    for (const core::Protocol protocol : core::kAllProtocols) {
      for (std::size_t rep = 0; rep < args.reps; ++rep) {
        jobs.push_back({load, protocol, args.seed + rep});
      }
    }
  }
  const auto results = core::parallel_runs(jobs.size(), [&](std::size_t i) {
    core::NetworkConfig config = args.config;
    config.traffic_rate_pps = jobs[i].load;
    // Long-lived batteries: Fig 11 measures steady-state energy/packet,
    // not lifetime effects.
    config.initial_energy_j = 1e6;
    return core::SimulationRunner::run(config, jobs[i].protocol, jobs[i].seed, options);
  });

  util::TableWriter table({"load pkt/s", "pure-leach mJ/pkt", "scheme1 mJ/pkt",
                           "scheme2 mJ/pkt", "s1 saving %"});
  for (const double load : loads) {
    double energy[3] = {0, 0, 0};
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].load != load) continue;
      energy[static_cast<int>(jobs[i].protocol)] += results[i].energy_per_delivered_packet_j;
    }
    for (double& value : energy) value = value / static_cast<double>(args.reps) * 1e3;
    table.new_row()
        .cell(load, 0)
        .cell(energy[0], 3)
        .cell(energy[1], 3)
        .cell(energy[2], 3)
        .cell(100.0 * (1.0 - energy[1] / energy[0]), 1);
  }
  table.render(std::cout);
  std::cout << "\npaper shape check: the saving column sits near 30-40% at low load and\n"
               "shrinks as the load grows (scheme1 lowers its threshold more often).\n";
  return 0;
}
