// bench_table2_params — reproduces Table II: the physical simulation
// parameters, as configured in core::NetworkConfig, including the unit
// substitutions documented in DESIGN.md.
//
// There is nothing to simulate here, so "running on the scenario
// engine" means the config comes from the same place every sweep's
// does: a ScenarioSpec materialising its baseline grid point.  CLI
// overrides therefore share the full scenario namespace (any
// NetworkConfig key; unknown keys are fatal).
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "phy/abicm.hpp"

int main(int argc, char** argv) {
  using namespace caem;
  scenario::ScenarioSpec spec;
  spec.name = "table2-params";
  try {
    const std::vector<std::string> tokens(argv + 1, argv + argc);
    if (!tokens.empty()) spec.apply_cli_overrides(util::Config::from_args(tokens));
  } catch (const std::exception& error) {
    std::cerr << "bad arguments: " << error.what() << "\n";
    return 1;
  }
  const core::NetworkConfig config = spec.config_at(scenario::expand_grid(spec.axes).at(0));
  bench::print_header("Table II — physical simulation parameters",
                      "parameter values used by every figure bench");

  util::TableWriter table({"parameter", "paper (Table II)", "this build"});
  const auto row = [&](const std::string& name, const std::string& paper,
                       const std::string& ours) {
    table.new_row().cell(name).cell(paper).cell(ours);
  };
  row("testing field", "~100 m x 100 m", util::format_fixed(config.field_size_m, 0) + " m sq");
  row("number of nodes", "100", std::to_string(config.node_count));
  row("bandwidth (ABICM modes)", "2, 1, 0.45, 0.25 Mbps", "2, 1, 0.45, 0.25 Mbps");
  row("percentage of CH", "5%", util::format_fixed(config.ch_fraction * 100, 0) + "%");
  row("tx power, data", "0.66 W", util::format_fixed(config.data_tx_w, 3) + " W");
  row("rx power, data", "0.305 W", util::format_fixed(config.data_rx_w, 3) + " W");
  row("sleep power, data", "3.5 (unit lost)", util::format_fixed(config.data_sleep_w * 1e6, 1) + " uW");
  row("tx power, tone", "92 (unit lost)", util::format_fixed(config.tone_tx_w * 1e3, 0) + " mW");
  row("rx power, tone", "36 (unit lost)", util::format_fixed(config.tone_rx_w * 1e3, 0) + " mW");
  row("packet length", "2 Kbits", util::format_fixed(config.packet_bits, 0) + " bits");
  row("sensing delay", "8 (unit lost)", util::format_fixed(config.sensing_delay_s * 1e3, 0) + " ms");
  row("contention window", "10", std::to_string(config.backoff.cw));
  row("buffer size", "50", std::to_string(config.buffer_capacity));
  row("initial energy", "10 J", util::format_fixed(config.initial_energy_j, 1) + " J");
  row("queue sampling m", "5", std::to_string(config.sample_every_m));
  row("Q_threshold", "15", std::to_string(config.arm_queue_length));
  row("burst min/max", "3 / 8", std::to_string(config.burst.min_packets) + " / " +
                                    std::to_string(config.burst.max_packets));
  row("max retransmissions", "6", std::to_string(config.backoff.max_retries));
  table.render(std::cout);

  std::cout << "\nABICM switching thresholds (substitution, see DESIGN.md):\n";
  const phy::AbicmTable modes;
  util::TableWriter mode_table({"mode", "rate", "min SNR dB"});
  for (std::size_t i = 0; i < modes.size(); ++i) {
    mode_table.new_row()
        .cell(std::string(modes.mode(i).name))
        .cell(modes.mode(i).data_rate_bps / 1e6, 3)
        .cell(modes.mode(i).min_snr_db, 1);
  }
  mode_table.render(std::cout);
  return 0;
}
