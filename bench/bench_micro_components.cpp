// bench_micro_components — google-benchmark micro-benchmarks of the hot
// substrate components (event queue, fading, PER, LEACH election,
// whole-network throughput), plus the kernel perf-tracking harness:
// after the micro suite runs, the binary measures
//   * event-kernel throughput (schedule + fire + cancel) against an
//     in-binary emulation of the pre-EventFn kernel (std::function
//     callbacks, O(n) linear-scan cancellation), and
//   * fig9-style end-to-end wall clock (run-to-extinction, all three
//     protocols) with the coherence-window SNR cache off vs on,
// and writes the machine-readable BENCH_kernel.json that future PRs are
// measured against.
//
// Usage: bench_micro_components [--benchmark_* flags] [key=value ...]
//   fast=1         shrink the kernel/fig9 harness for smoke runs
//   seed=<n>       base seed for the fig9 harness (default 2005)
//   json=<path>    output path (default BENCH_kernel.json)
//   micro=0        skip the google-benchmark micro suite
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "channel/fading.hpp"
#include "channel/link_manager.hpp"
#include "core/network.hpp"
#include "core/protocol.hpp"
#include "core/simulation_runner.hpp"
#include "leach/election.hpp"
#include "phy/error_model.hpp"
#include "sim/event_queue.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"

namespace {

using namespace caem;

// ------------------------------------------------------------------------
// Pre-change kernel emulation: the seed's EventQueue verbatim —
// std::function callbacks (heap allocation per capture beyond the
// libstdc++ 16-byte SBO) and tombstone cancellation via linear scan.
// Kept here so the "2x over baseline" acceptance number is measured in
// the same binary, same compiler, same machine as the new kernel.
class LegacyEventQueue {
 public:
  using Callback = std::function<void(double)>;

  std::uint64_t schedule(double time_s, Callback callback) {
    const std::uint64_t id = next_sequence_++;
    heap_.push_back(Entry{time_s, id, std::move(callback), false});
    sift_up(heap_.size() - 1);
    ++live_count_;
    return id;
  }

  bool cancel(std::uint64_t id) noexcept {
    for (auto& entry : heap_) {
      if (entry.sequence == id) {
        if (entry.cancelled) return false;
        entry.cancelled = true;
        entry.callback = nullptr;
        --live_count_;
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] bool empty() const noexcept { return live_count_ == 0; }

  struct Fired {
    double time_s;
    Callback callback;
  };
  Fired pop() {
    drop_dead_top();
    Entry top = std::move(heap_.front());
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    --live_count_;
    drop_dead_top();
    return Fired{top.time_s, std::move(top.callback)};
  }

 private:
  struct Entry {
    double time_s;
    std::uint64_t sequence;
    Callback callback;
    bool cancelled = false;
  };
  [[nodiscard]] static bool later(const Entry& a, const Entry& b) noexcept {
    if (a.time_s != b.time_s) return a.time_s > b.time_s;
    return a.sequence > b.sequence;
  }
  void drop_dead_top() {
    while (!heap_.empty() && heap_.front().cancelled) {
      heap_.front() = std::move(heap_.back());
      heap_.pop_back();
      if (!heap_.empty()) sift_down(0);
    }
  }
  void sift_up(std::size_t index) noexcept {
    while (index > 0) {
      const std::size_t parent = (index - 1) / 2;
      if (!later(heap_[parent], heap_[index])) break;
      std::swap(heap_[parent], heap_[index]);
      index = parent;
    }
  }
  void sift_down(std::size_t index) noexcept {
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t left = 2 * index + 1;
      const std::size_t right = left + 1;
      std::size_t smallest = index;
      if (left < n && later(heap_[smallest], heap_[left])) smallest = left;
      if (right < n && later(heap_[smallest], heap_[right])) smallest = right;
      if (smallest == index) return;
      std::swap(heap_[index], heap_[smallest]);
      index = smallest;
    }
  }
  std::vector<Entry> heap_;
  std::uint64_t next_sequence_ = 1;
  std::size_t live_count_ = 0;
};

// ------------------------------------------------------------------------
// Kernel throughput workload: rounds of batch-schedule, cancel a third
// (MAC timers are cancelled constantly: round detach, aborts, holds),
// fire the rest.  Callbacks capture a pointer plus two scalars — the
// kernel's real capture shape, which std::function heap-allocates and
// EventFn stores inline.
template <typename Queue>
double kernel_events_per_sec(std::size_t batch, std::size_t rounds) {
  util::Rng rng(99);
  Queue queue;
  std::vector<std::uint64_t> ids(batch);
  double sink = 0.0;
  std::uint64_t scheduled = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t round = 0; round < rounds; ++round) {
    const double base = static_cast<double>(round);
    for (std::size_t i = 0; i < batch; ++i) {
      const double offset = rng.uniform();
      ids[i] = queue.schedule(base + offset, [&sink, base, offset](double now) {
        sink += now - base + offset;
      });
    }
    scheduled += batch;
    for (std::size_t i = 0; i < batch; i += 3) queue.cancel(ids[i]);
    while (!queue.empty()) {
      auto fired = queue.pop();
      fired.callback(fired.time_s);
    }
  }
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  benchmark::DoNotOptimize(sink);
  return static_cast<double>(scheduled) / elapsed.count();
}

// Fig9-style end-to-end: all three protocols run to network extinction,
// sequentially (stable wall-clock), at one seed.  Returns the wall time
// and the kernel events executed — the cache knob perturbs the
// (approximate) channel trajectory, so network lifetimes and event
// counts differ between the two arms and raw wall seconds alone would
// conflate simulator speed with the amount of simulated work.  Wall
// time per executed event is the trajectory-robust throughput metric.
struct Fig9Timing {
  double wall_s = 0.0;
  double simulated_s = 0.0;
  std::uint64_t events = 0;
  [[nodiscard]] double wall_s_per_event() const noexcept {
    return events > 0 ? wall_s / static_cast<double>(events) : 0.0;
  }
};

Fig9Timing fig9_timing(const core::NetworkConfig& config, std::uint64_t seed,
                       double max_sim_s) {
  core::RunOptions options;
  options.max_sim_s = max_sim_s;
  options.run_to_death = true;
  Fig9Timing timing;
  const auto start = std::chrono::steady_clock::now();
  for (const core::Protocol protocol : core::paper_protocols()) {
    const auto result = core::SimulationRunner::run(config, protocol, seed, options);
    timing.simulated_s += result.sim_end_s;
    timing.events += result.executed_events;
  }
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  timing.wall_s = elapsed.count();
  return timing;
}

struct KernelReport {
  std::size_t batch = 0;
  std::size_t rounds = 0;
  double legacy_events_per_sec = 0.0;
  double eventfn_events_per_sec = 0.0;
  Fig9Timing fig9_cache_off;
  Fig9Timing fig9_cache_on;
};

void write_json(const KernelReport& report, const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  const double speedup = report.legacy_events_per_sec > 0.0
                             ? report.eventfn_events_per_sec / report.legacy_events_per_sec
                             : 0.0;
  const double off_rate = report.fig9_cache_off.wall_s_per_event();
  const double on_rate = report.fig9_cache_on.wall_s_per_event();
  const double improvement_pct = off_rate > 0.0 ? 100.0 * (1.0 - on_rate / off_rate) : 0.0;
  std::fprintf(out,
               "{\n"
               "  \"kernel_throughput\": {\n"
               "    \"workload\": \"schedule+fire+cancel, %zu events/round, %zu rounds, "
               "1/3 cancelled\",\n"
               "    \"baseline_std_function_events_per_sec\": %.0f,\n"
               "    \"eventfn_generation_id_events_per_sec\": %.0f,\n"
               "    \"speedup\": %.2f\n"
               "  },\n"
               "  \"fig9_end_to_end\": {\n"
               "    \"workload\": \"3 protocols, run to extinction, sequential; "
               "improvement compares wall time per executed kernel event (lifetimes and "
               "event counts differ between arms)\",\n"
               "    \"snr_cache_off_wall_s\": %.3f,\n"
               "    \"snr_cache_off_simulated_s\": %.1f,\n"
               "    \"snr_cache_off_events\": %llu,\n"
               "    \"snr_cache_on_wall_s\": %.3f,\n"
               "    \"snr_cache_on_simulated_s\": %.1f,\n"
               "    \"snr_cache_on_events\": %llu,\n"
               "    \"improvement_pct\": %.1f\n"
               "  }\n"
               "}\n",
               report.batch, report.rounds, report.legacy_events_per_sec,
               report.eventfn_events_per_sec, speedup, report.fig9_cache_off.wall_s,
               report.fig9_cache_off.simulated_s,
               static_cast<unsigned long long>(report.fig9_cache_off.events),
               report.fig9_cache_on.wall_s, report.fig9_cache_on.simulated_s,
               static_cast<unsigned long long>(report.fig9_cache_on.events),
               improvement_pct);
  std::fclose(out);
  std::printf("\nBENCH_kernel -> %s\n", path.c_str());
  std::printf("  kernel: legacy %.2fM ev/s, eventfn %.2fM ev/s (%.2fx)\n",
              report.legacy_events_per_sec / 1e6, report.eventfn_events_per_sec / 1e6, speedup);
  std::printf("  fig9:   cache off %.3f s wall / %.1fM events, cache on %.3f s / %.1fM events "
              "(%.1f%% faster per event)\n",
              report.fig9_cache_off.wall_s,
              static_cast<double>(report.fig9_cache_off.events) / 1e6,
              report.fig9_cache_on.wall_s,
              static_cast<double>(report.fig9_cache_on.events) / 1e6, improvement_pct);
}

// ------------------------------------------------------------------------
// google-benchmark micro suite (unchanged components + the new kernel).

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  for (auto _ : state) {
    sim::EventQueue queue;
    for (std::size_t i = 0; i < batch; ++i) {
      queue.schedule(rng.uniform(), [](double) {});
    }
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(64)->Arg(512)->Arg(4096);

void BM_EventQueueScheduleFireCancel(benchmark::State& state) {
  // The acceptance workload, exposed as a micro benchmark too.
  const auto batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel_events_per_sec<sim::EventQueue>(batch, 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueueScheduleFireCancel)->Arg(512);

void BM_LegacyQueueScheduleFireCancel(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel_events_per_sec<LegacyEventQueue>(batch, 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_LegacyQueueScheduleFireCancel)->Arg(512);

void BM_JakesFadingEval(benchmark::State& state) {
  channel::JakesRayleighFading fading(3.0, util::Rng(2),
                                      static_cast<std::size_t>(state.range(0)));
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fading.power_gain(t));
    t += 1e-3;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_JakesFadingEval)->Arg(8)->Arg(16)->Arg(32);

void BM_LinkSnrEval(benchmark::State& state) {
  // state.range(0): 1 = coherence-window cache enabled, 0 = exact eval.
  sim::RngRegistry rng(3);
  channel::ChannelConfig config;
  config.snr_cache_enabled = state.range(0) != 0;
  channel::LinkManager links(config, &rng);
  const auto a = links.add_static_node({0, 0});
  const auto b = links.add_static_node({30, 0});
  const channel::LinkBudget budget{0.0, -101.0};
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(links.snr_db(a, b, t, budget));
    t += 1e-3;  // tone-check cadence is well inside the ~141 ms coherence window
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LinkSnrEval)->Arg(0)->Arg(1);

void BM_PacketErrorRate(benchmark::State& state) {
  const phy::AbicmTable table;
  const phy::PacketErrorModel model(&table);
  double snr = 5.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.packet_error_rate(snr < 12 ? 0 : 3, snr, 2048.0));
    snr = snr >= 25.0 ? 5.0 : snr + 0.1;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PacketErrorRate);

void BM_LeachElection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  leach::Election election(n, 0.05);
  util::Rng rng(4);
  const std::vector<bool> alive(n, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(election.elect(alive, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LeachElection)->Arg(100)->Arg(1000);

void BM_NetworkSimulatedSecond(benchmark::State& state) {
  // Whole-network throughput: simulated seconds per wall second for the
  // paper's default 100-node network under Scheme 1.
  core::NetworkConfig config;
  config.initial_energy_j = 1e6;
  core::Network network(config, core::protocol_from_string("scheme1"), 7);
  network.start();
  double horizon = 0.0;
  for (auto _ : state) {
    horizon += 1.0;
    network.simulator().run_until(horizon);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(network.simulator().executed_events()),
      benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NetworkSimulatedSecond)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Split argv: --benchmark_* flags go to google-benchmark, key=value
  // tokens are ours (bench_common conventions).
  std::vector<char*> bench_argv{argv[0]};
  std::vector<std::string> kv_tokens;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      bench_argv.push_back(argv[i]);
    } else {
      kv_tokens.push_back(token);
    }
  }
  util::Config overrides;
  core::NetworkConfig config;
  try {
    overrides = util::Config::from_args(kv_tokens);
    config.apply_overrides(overrides);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "bad arguments: %s\n", error.what());
    return 1;
  }
  const bool fast = overrides.get_bool("fast", false);
  const auto seed = static_cast<std::uint64_t>(overrides.get_int("seed", 2005));
  const std::string json_path = overrides.get_string("json", "BENCH_kernel.json");
  const bool run_micro = overrides.get_bool("micro", true);
  // Reject typo'd keys: a silently ignored override would mislabel the
  // published BENCH_kernel.json.
  const std::vector<std::string> typos = overrides.unconsumed();
  if (!typos.empty()) {
    for (const std::string& key : typos) {
      std::fprintf(stderr, "unknown key: '%s'\n", key.c_str());
    }
    return 1;
  }
  // fast mode shrinks the fig9 arms unless the user pinned the energy.
  if (fast && !overrides.has("initial_energy_j")) config.initial_energy_j = 2.0;

  if (run_micro) {
    int bench_argc = static_cast<int>(bench_argv.size());
    benchmark::Initialize(&bench_argc, bench_argv.data());
    benchmark::RunSpecifiedBenchmarks();
  }

  // ---- kernel perf-tracking harness (BENCH_kernel.json) ----
  KernelReport report;
  report.batch = 2048;  // standing pending-set size of a ~500-node network
  report.rounds = fast ? 100 : 1000;
  // Warm up both queues once so allocator state is comparable.
  kernel_events_per_sec<LegacyEventQueue>(report.batch, 10);
  kernel_events_per_sec<sim::EventQueue>(report.batch, 10);
  report.legacy_events_per_sec =
      kernel_events_per_sec<LegacyEventQueue>(report.batch, report.rounds);
  report.eventfn_events_per_sec =
      kernel_events_per_sec<sim::EventQueue>(report.batch, report.rounds);

  const double max_sim_s = fast ? 600.0 : 4000.0;
  config.channel.snr_cache_enabled = false;
  report.fig9_cache_off = fig9_timing(config, seed, max_sim_s);
  config.channel.snr_cache_enabled = true;
  report.fig9_cache_on = fig9_timing(config, seed, max_sim_s);

  write_json(report, json_path);
  return 0;
}
