// bench_micro_components — google-benchmark micro-benchmarks of the hot
// substrate components: event queue operations, fading evaluation, PER
// evaluation, LEACH election, and whole-network event throughput.
#include <benchmark/benchmark.h>

#include "channel/fading.hpp"
#include "channel/link_manager.hpp"
#include "core/network.hpp"
#include "leach/election.hpp"
#include "phy/error_model.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace {

using namespace caem;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  for (auto _ : state) {
    sim::EventQueue queue;
    for (std::size_t i = 0; i < batch; ++i) {
      queue.schedule(rng.uniform(), [](double) {});
    }
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(64)->Arg(512)->Arg(4096);

void BM_JakesFadingEval(benchmark::State& state) {
  channel::JakesRayleighFading fading(3.0, util::Rng(2),
                                      static_cast<std::size_t>(state.range(0)));
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fading.power_gain(t));
    t += 1e-3;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_JakesFadingEval)->Arg(8)->Arg(16)->Arg(32);

void BM_LinkSnrEval(benchmark::State& state) {
  sim::RngRegistry rng(3);
  channel::ChannelConfig config;
  channel::LinkManager links(config, &rng);
  const auto a = links.add_static_node({0, 0});
  const auto b = links.add_static_node({30, 0});
  const channel::LinkBudget budget{0.0, -101.0};
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(links.snr_db(a, b, t, budget));
    t += 1e-3;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LinkSnrEval);

void BM_PacketErrorRate(benchmark::State& state) {
  const phy::AbicmTable table;
  const phy::PacketErrorModel model(&table);
  double snr = 5.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.packet_error_rate(snr < 12 ? 0 : 3, snr, 2048.0));
    snr = snr >= 25.0 ? 5.0 : snr + 0.1;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PacketErrorRate);

void BM_LeachElection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  leach::Election election(n, 0.05);
  util::Rng rng(4);
  const std::vector<bool> alive(n, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(election.elect(alive, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LeachElection)->Arg(100)->Arg(1000);

void BM_NetworkSimulatedSecond(benchmark::State& state) {
  // Whole-network throughput: simulated seconds per wall second for the
  // paper's default 100-node network under Scheme 1.
  core::NetworkConfig config;
  config.initial_energy_j = 1e6;
  core::Network network(config, core::Protocol::kCaemScheme1, 7);
  network.start();
  double horizon = 0.0;
  for (auto _ : state) {
    horizon += 1.0;
    network.simulator().run_until(horizon);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(network.simulator().executed_events()),
      benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NetworkSimulatedSecond)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
