// bench_ablation_sampling — ablation B: the queue-sampling interval m of
// the Fig 6 predictor (paper fixes m = 5).  m = 1 reacts fastest but is
// noisy (single-arrival jitter flips dV); large m reacts slowly and lets
// queues overshoot before relief arrives.
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace caem;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Ablation B — queue sampling interval m (Scheme 1)",
                      "Fig 6 predictor cadence, paper value 5");

  const std::vector<std::string> intervals =
      args.fast ? std::vector<std::string>{"1", "5"}
                : std::vector<std::string>{"1", "2", "5", "10", "20"};

  // Engine sweep (file-driven equivalent:
  // examples/scenarios/ablation_sampling.scn).
  scenario::ScenarioSpec spec;
  spec.name = "ablation-sampling";
  spec.base_config = args.config;
  spec.base_config.traffic_rate_pps = 10.0;
  spec.base_config.initial_energy_j = 1e6;
  spec.base_seed = args.seed;
  spec.replications = args.reps;
  spec.options.max_sim_s = args.fast ? 60.0 : 120.0;
  spec.protocols = {core::protocol_from_string("scheme1")};
  spec.axes.push_back(scenario::Axis{"sample_every_m", intervals});
  const scenario::ScenarioResult sweep = scenario::run_scenario(spec);

  util::TableWriter table({"m", "mJ/packet", "queue stddev", "mean delay ms", "delivery %",
                           "lower events", "raise events"});
  for (const scenario::PointResult& point : sweep.points) {
    const core::Replicated& summary = point.protocols[0].replicated;
    double lowers = 0.0, raises = 0.0;
    for (const auto& run : summary.runs) {
      lowers += static_cast<double>(run.threshold_lower_events);
      raises += static_cast<double>(run.threshold_raise_events);
    }
    const auto reps = static_cast<double>(args.reps);
    table.new_row()
        .cell(static_cast<std::size_t>(point.config.sample_every_m))
        .cell(summary.energy_per_packet_j.mean() * 1e3, 3)
        .cell(summary.queue_stddev.mean(), 2)
        .cell(summary.mean_delay_s.mean() * 1e3, 1)
        .cell(summary.delivery_rate.mean() * 100.0, 1)
        .cell(lowers / reps, 0)
        .cell(raises / reps, 0);
  }
  table.render(std::cout);
  std::cout << "\nexpected: controller activity (lower/raise events) falls as m grows;\n"
               "delay and queue dispersion worsen at very large m.\n";
  return 0;
}
