// bench_fig12_queue_fairness — reproduces Figure 12: standard deviation
// of per-node queue length versus traffic load (the paper's short-term
// fairness metric, Equation 3), with buffers made large enough that no
// packet is dropped (as the paper does for this experiment).
//
// Paper shape: Scheme 1 (adaptive threshold) shows the lowest std-dev —
// the best fairness; Scheme 2 the highest (starved bad-channel nodes).
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace caem;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 12 — std-dev of queue length vs load",
                      "short-term fairness, large buffers");

  const std::vector<std::string> loads =
      args.fast ? std::vector<std::string>{"5", "15"}
                : std::vector<std::string>{"5", "10", "15", "20", "25"};

  // Engine sweep (file-driven equivalent:
  // examples/scenarios/fig12_queue_fairness.scn).
  scenario::ScenarioSpec spec;
  spec.name = "fig12-queue-fairness";
  spec.base_config = args.config;
  spec.base_config.buffer_capacity = 100000;  // "substantially large" (paper)
  spec.base_config.initial_energy_j = 1e6;    // isolate queueing from deaths
  spec.base_seed = args.seed;
  spec.replications = args.reps;
  spec.options.max_sim_s = args.fast ? 60.0 : 150.0;
  spec.axes.push_back(scenario::Axis{"traffic_rate_pps", loads});
  const scenario::ScenarioResult sweep = scenario::run_scenario(spec);

  util::TableWriter table({"load pkt/s", "pure-leach", "caem-scheme1", "caem-scheme2"});
  for (const scenario::PointResult& point : sweep.points) {
    table.new_row().cell(point.config.traffic_rate_pps, 0);
    for (const scenario::ProtocolResult& entry : point.protocols) {
      double stddev = 0.0;
      for (const auto& run : entry.replicated.runs) stddev += run.mean_queue_stddev;
      table.cell(stddev / static_cast<double>(args.reps), 2);
    }
  }
  table.render(std::cout);
  std::cout << "\npaper shape check: scheme1 column lowest (fairest), scheme2 highest;\n"
               "all grow with load.\n";
  return 0;
}
