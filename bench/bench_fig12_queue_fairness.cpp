// bench_fig12_queue_fairness — reproduces Figure 12: standard deviation
// of per-node queue length versus traffic load (the paper's short-term
// fairness metric, Equation 3), with buffers made large enough that no
// packet is dropped (as the paper does for this experiment).
//
// Paper shape: Scheme 1 (adaptive threshold) shows the lowest std-dev —
// the best fairness; Scheme 2 the highest (starved bad-channel nodes).
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace caem;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 12 — std-dev of queue length vs load",
                      "short-term fairness, large buffers");

  const std::vector<double> loads =
      args.fast ? std::vector<double>{5.0, 15.0} : std::vector<double>{5, 10, 15, 20, 25};

  core::RunOptions options;
  options.max_sim_s = args.fast ? 60.0 : 150.0;

  struct Job {
    double load;
    core::Protocol protocol;
    std::uint64_t seed;
  };
  std::vector<Job> jobs;
  for (const double load : loads) {
    for (const core::Protocol protocol : core::kAllProtocols) {
      for (std::size_t rep = 0; rep < args.reps; ++rep) {
        jobs.push_back({load, protocol, args.seed + rep});
      }
    }
  }
  const auto results = core::parallel_runs(jobs.size(), [&](std::size_t i) {
    core::NetworkConfig config = args.config;
    config.traffic_rate_pps = jobs[i].load;
    config.buffer_capacity = 100000;  // "substantially large" (paper)
    config.initial_energy_j = 1e6;    // isolate queueing from deaths
    return core::SimulationRunner::run(config, jobs[i].protocol, jobs[i].seed, options);
  });

  util::TableWriter table({"load pkt/s", "pure-leach", "caem-scheme1", "caem-scheme2"});
  for (const double load : loads) {
    double stddev[3] = {0, 0, 0};
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].load != load) continue;
      stddev[static_cast<int>(jobs[i].protocol)] += results[i].mean_queue_stddev;
    }
    table.new_row().cell(load, 0);
    for (const double value : stddev) table.cell(value / static_cast<double>(args.reps), 2);
  }
  table.render(std::cout);
  std::cout << "\npaper shape check: scheme1 column lowest (fairest), scheme2 highest;\n"
               "all grow with load.\n";
  return 0;
}
