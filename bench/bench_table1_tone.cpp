// bench_table1_tone — reproduces Table I (tone pulse intervals per
// channel state) and verifies, against the simulated pulse train, that
// the broadcaster's emitted duty cycles match the encoded patterns.
#include <iostream>

#include "bench_common.hpp"
#include "energy/radio_energy_model.hpp"
#include "sim/simulator.hpp"
#include "tone/tone_broadcaster.hpp"
#include "tone/tone_codec.hpp"

int main(int argc, char** argv) {
  using namespace caem;
  // This table is pure protocol constants — there is nothing to
  // override, so any argument is a mistake worth failing loudly on.
  if (argc > 1) {
    std::cerr << "bench_table1_tone takes no overrides; got '" << argv[1] << "'\n";
    return 1;
  }
  bench::print_header("Table I — tone channel states",
                      "pulse duration / interval per data-channel state");

  util::TableWriter table(
      {"state", "pulse ms", "period ms", "duty %", "measured duty %", "pulses in 10 s"});
  for (const tone::ToneState state :
       {tone::ToneState::kIdle, tone::ToneState::kReceive, tone::ToneState::kCollision}) {
    const tone::PulsePattern pattern = tone::pattern_for(state);

    // Measure the emitted duty cycle from an actual simulated pulse train.
    sim::Simulator sim;
    energy::Battery battery(100.0);
    energy::EnergyLedger ledger;
    energy::RadioPowerProfile profile;
    profile.tx_w = 1.0;  // 1 W -> tx joules == seconds on air
    energy::Radio radio(energy::RadioId::kTone, profile, &battery, &ledger);
    tone::ToneBroadcaster broadcaster(&sim, &radio);
    broadcaster.start(0.0);
    if (state != tone::ToneState::kIdle) {
      // One-shot states are re-armed every period for measurement.
      sim.schedule_at(0.0, [&](double now) { broadcaster.set_state(now, state, state); });
    }
    sim.run_until(10.0);
    radio.settle(10.0);
    const double on_air = ledger.entry(energy::RadioId::kTone, energy::RadioState::kTx);

    table.new_row()
        .cell(std::string(tone::to_string(state)))
        .cell(pattern.pulse_duration_s * 1e3, 1)
        .cell(pattern.repeating ? pattern.period_s * 1e3 : 0.0, 1)
        .cell(pattern.duty_cycle() * 100.0, 1)
        .cell(on_air / 10.0 * 100.0, 1)
        .cell(static_cast<std::size_t>(broadcaster.pulses_emitted()));
  }
  table.render(std::cout);

  // Decode check: intervals classify back to their states.
  const tone::ToneCodec codec;
  std::cout << "\ncodec round-trip: idle interval -> "
            << tone::to_string(codec.classify_interval(50e-3).value()) << ", receive interval -> "
            << tone::to_string(codec.classify_interval(10e-3).value())
            << ", worst-case acquisition "
            << codec.worst_case_acquisition_s() * 1e3 << " ms\n";
  return 0;
}
