// bench_ext_baselines — the full protocol registry side by side: the
// paper's trio, the deadline extension, and the three registration-only
// baselines (direct-to-sink, static clustering, adaptive+deadline).
// Answers the classic LEACH questions the paper takes as given — what
// does clustering buy over direct transmission, and what does per-round
// re-election buy over electing once — with the CAEM schemes on the same
// axes.  File-driven equivalent: examples/scenarios/baselines.scn.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/protocol.hpp"

int main(int argc, char** argv) {
  using namespace caem;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Extension — protocol baselines",
                      "clustering vs direct uplink vs static election, all loads");

  scenario::ScenarioSpec spec;
  spec.name = "ext-baselines";
  spec.base_config = args.config;
  // Clustered protocols pay their CH -> base-station uplink so the
  // comparison with `direct` (whose uplink IS the protocol) is fair.
  spec.base_config.ch_forward_enabled = true;
  spec.base_seed = args.seed;
  spec.replications = args.reps;
  spec.options.run_to_death = !args.fast;
  spec.options.max_sim_s = args.fast ? 150.0 : 2000.0;
  // Whatever the registry holds, in registration order — an eighth
  // registration shows up here without touching the bench.
  spec.protocols = core::registered_protocols();
  const std::vector<std::string> loads =
      args.fast ? std::vector<std::string>{"5", "15"}
                : std::vector<std::string>{"1", "5", "10", "15"};
  spec.axes.push_back(scenario::Axis{"traffic_rate_pps", loads});

  const scenario::ScenarioResult result = scenario::run_scenario(spec);

  util::TableWriter table({"load pps", "protocol", "clustering", "lifetime s",
                           "first death s", "delivery %", "mean delay ms", "mJ/packet"});
  for (const scenario::PointResult& point : result.points) {
    for (const scenario::ProtocolResult& entry : point.protocols) {
      table.new_row()
          .cell(point.config.traffic_rate_pps, 0)
          .cell(std::string(entry.protocol.name()))
          .cell(entry.protocol.spec().clustering_label())
          .cell(entry.replicated.lifetime_s.mean(), 1)
          .cell(entry.replicated.first_death_s.mean(), 1)
          .cell(entry.replicated.delivery_rate.mean() * 100.0, 1)
          .cell(entry.replicated.mean_delay_s.mean() * 1e3, 1)
          .cell(entry.replicated.energy_per_packet_j.mean() * 1e3, 3);
    }
  }
  table.render(std::cout);
  std::cout << "\nexpected: `direct` delivers everything with zero queueing delay but\n"
               "pays the long-haul cost per packet; `static-cluster` matches pure\n"
               "LEACH early but its first death comes much sooner (the frozen CHs\n"
               "carry the whole burden, which is the energy-balancing argument for\n"
               "re-election); `caem-adaptive-deadline` sits between scheme1 and\n"
               "caem-deadline on the energy/delay axes.\n";
  return 0;
}
