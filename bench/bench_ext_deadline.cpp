// bench_ext_deadline — extension study (the paper's future-work
// direction: "find the respective application scenarios for the two
// schemes"): a deadline-aware CAEM that keeps Scheme 2's fixed
// energy-optimal threshold but lets a sensor whose head-of-line packet
// exceeds an age deadline transmit anyway.  Sweeps the deadline and
// shows the resulting energy/delay/fairness trade-off curve between
// Scheme 2 (deadline -> infinity) and pure LEACH (deadline -> 0).
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace caem;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Extension — deadline-aware CAEM",
                      "energy/delay trade-off between Scheme 2 and pure LEACH");

  core::RunOptions options;
  options.max_sim_s = args.fast ? 60.0 : 120.0;

  util::TableWriter table({"variant", "mJ/packet", "mean delay ms", "p95 delay ms",
                           "queue stddev", "delivery %", "overrides"});

  const auto run_point = [&](core::Protocol protocol, double deadline_s,
                             const std::string& label) {
    core::NetworkConfig config = args.config;
    config.traffic_rate_pps = 8.0;
    config.initial_energy_j = 1e6;
    config.csi_gate_deadline_s = deadline_s;
    const auto summary = core::run_replicated(config, protocol, args.seed, args.reps, options);
    double overrides = 0.0;
    for (const auto& run : summary.runs) {
      overrides += static_cast<double>(run.mac.deadline_overrides);
    }
    double p95 = 0.0;
    for (const auto& run : summary.runs) p95 += run.p95_delay_s;
    const auto reps = static_cast<double>(args.reps);
    table.new_row()
        .cell(label)
        .cell(summary.energy_per_packet_j.mean() * 1e3, 3)
        .cell(summary.mean_delay_s.mean() * 1e3, 1)
        .cell(p95 / reps * 1e3, 1)
        .cell(summary.queue_stddev.mean(), 2)
        .cell(summary.delivery_rate.mean() * 100.0, 1)
        .cell(overrides / reps, 0);
  };

  run_point(core::Protocol::kPureLeach, 0.0, "pure-leach");
  const std::vector<double> deadlines =
      args.fast ? std::vector<double>{0.5} : std::vector<double>{0.1, 0.25, 0.5, 1.0, 2.0};
  for (const double deadline : deadlines) {
    run_point(core::Protocol::kCaemDeadline, deadline,
              "deadline " + util::format_fixed(deadline, 2) + " s");
  }
  run_point(core::Protocol::kCaemScheme2, 0.0, "caem-scheme2");

  table.render(std::cout);
  std::cout << "\nexpected: energy per packet interpolates monotonically between pure\n"
               "LEACH (deadline -> 0) and Scheme 2 (deadline -> infinity), while the\n"
               "queue-stddev (fairness) column stays near pure LEACH's — the override\n"
               "removes Scheme 2's starvation.  Note that at saturating loads Scheme 2\n"
               "can show the *lowest* delay overall because it wastes no air time on\n"
               "bad channels; the deadline variant trades some of that margin for a\n"
               "bounded worst-case head-of-line wait.\n";
  return 0;
}
