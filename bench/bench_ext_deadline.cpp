// bench_ext_deadline — extension study (the paper's future-work
// direction: "find the respective application scenarios for the two
// schemes"): a deadline-aware CAEM that keeps Scheme 2's fixed
// energy-optimal threshold but lets a sensor whose head-of-line packet
// exceeds an age deadline transmit anyway.  Sweeps the deadline and
// shows the resulting energy/delay/fairness trade-off curve between
// Scheme 2 (deadline -> infinity) and pure LEACH (deadline -> 0).
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace caem;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Extension — deadline-aware CAEM",
                      "energy/delay trade-off between Scheme 2 and pure LEACH");

  core::RunOptions options;
  options.max_sim_s = args.fast ? 60.0 : 120.0;

  // Three engine runs replace the per-variant run_replicated barriers:
  // the two endpoint protocols as single-point scenarios and the
  // deadline variant as a csi_gate_deadline_s sweep — the ROADMAP's
  // "protocol extensions as scenario axes" item (file-driven equivalent:
  // examples/scenarios/ext_deadline.scn).
  const auto make_spec = [&](const char* name, core::Protocol protocol) {
    scenario::ScenarioSpec spec;
    spec.name = name;
    spec.base_config = args.config;
    spec.base_config.traffic_rate_pps = 8.0;
    spec.base_config.initial_energy_j = 1e6;
    spec.base_config.csi_gate_deadline_s = 0.0;
    spec.base_seed = args.seed;
    spec.replications = args.reps;
    spec.options = options;
    spec.protocols = {protocol};
    return spec;
  };

  util::TableWriter table({"variant", "mJ/packet", "mean delay ms", "p95 delay ms",
                           "queue stddev", "delivery %", "overrides"});
  const auto add_row = [&](const std::string& label, const core::Replicated& summary) {
    double overrides = 0.0;
    for (const auto& run : summary.runs) {
      overrides += static_cast<double>(run.mac.deadline_overrides);
    }
    double p95 = 0.0;
    for (const auto& run : summary.runs) p95 += run.p95_delay_s;
    const auto reps = static_cast<double>(args.reps);
    table.new_row()
        .cell(label)
        .cell(summary.energy_per_packet_j.mean() * 1e3, 3)
        .cell(summary.mean_delay_s.mean() * 1e3, 1)
        .cell(p95 / reps * 1e3, 1)
        .cell(summary.queue_stddev.mean(), 2)
        .cell(summary.delivery_rate.mean() * 100.0, 1)
        .cell(overrides / reps, 0);
  };

  const scenario::ScenarioResult leach =
      scenario::run_scenario(make_spec("ext-deadline-leach", core::protocol_from_string("leach")));
  add_row("pure-leach", leach.points[0].protocols[0].replicated);

  scenario::ScenarioSpec deadline_spec =
      make_spec("ext-deadline-sweep", core::protocol_from_string("deadline"));
  const std::vector<std::string> deadlines =
      args.fast ? std::vector<std::string>{"0.5"}
                : std::vector<std::string>{"0.1", "0.25", "0.5", "1", "2"};
  deadline_spec.axes.push_back(scenario::Axis{"csi_gate_deadline_s", deadlines});
  const scenario::ScenarioResult deadline_sweep = scenario::run_scenario(deadline_spec);
  for (const scenario::PointResult& point : deadline_sweep.points) {
    add_row("deadline " + util::format_fixed(point.config.csi_gate_deadline_s, 2) + " s",
            point.protocols[0].replicated);
  }

  const scenario::ScenarioResult scheme2 =
      scenario::run_scenario(make_spec("ext-deadline-scheme2", core::protocol_from_string("scheme2")));
  add_row("caem-scheme2", scheme2.points[0].protocols[0].replicated);

  table.render(std::cout);
  std::cout << "\nexpected: energy per packet interpolates monotonically between pure\n"
               "LEACH (deadline -> 0) and Scheme 2 (deadline -> infinity), while the\n"
               "queue-stddev (fairness) column stays near pure LEACH's — the override\n"
               "removes Scheme 2's starvation.  Note that at saturating loads Scheme 2\n"
               "can show the *lowest* delay overall because it wastes no air time on\n"
               "bad channels; the deadline variant trades some of that margin for a\n"
               "bounded worst-case head-of-line wait.\n";
  return 0;
}
