// bench_ablation_qthreshold — ablation A: sensitivity of CAEM Scheme 1
// to the Q_threshold arming length (paper fixes it at 15 without a
// sweep).  Smaller Q_threshold => the threshold adjustment engages
// earlier => more low-mode transmissions (less energy saving) but
// smaller queues (better fairness/delay).
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace caem;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Ablation A — Q_threshold sweep (Scheme 1)",
                      "arming length of the Fig 6 adjustment, paper value 15");

  const std::vector<std::size_t> thresholds =
      args.fast ? std::vector<std::size_t>{5, 15} : std::vector<std::size_t>{5, 10, 15, 25, 40};

  core::RunOptions options;
  options.max_sim_s = args.fast ? 60.0 : 120.0;

  util::TableWriter table({"Q_threshold", "mJ/packet", "queue stddev", "mean delay ms",
                           "delivery %", "threshold lowers/s"});
  for (const std::size_t q : thresholds) {
    core::NetworkConfig config = args.config;
    config.arm_queue_length = q;
    config.traffic_rate_pps = 10.0;
    config.initial_energy_j = 1e6;
    const auto summary = core::run_replicated(config, core::Protocol::kCaemScheme1,
                                              args.seed, args.reps, options);
    double lowers = 0.0;
    for (const auto& run : summary.runs) {
      lowers += static_cast<double>(run.threshold_lower_events);
    }
    table.new_row()
        .cell(q)
        .cell(summary.energy_per_packet_j.mean() * 1e3, 3)
        .cell(summary.queue_stddev.mean(), 2)
        .cell(summary.mean_delay_s.mean() * 1e3, 1)
        .cell(summary.delivery_rate.mean() * 100.0, 1)
        .cell(lowers / static_cast<double>(args.reps) / options.max_sim_s, 2);
  }
  table.render(std::cout);
  std::cout << "\nexpected: energy per packet rises as Q_threshold falls (earlier\n"
               "threshold relief), queue dispersion falls.\n";
  return 0;
}
