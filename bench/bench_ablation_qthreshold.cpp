// bench_ablation_qthreshold — ablation A: sensitivity of CAEM Scheme 1
// to the Q_threshold arming length (paper fixes it at 15 without a
// sweep).  Smaller Q_threshold => the threshold adjustment engages
// earlier => more low-mode transmissions (less energy saving) but
// smaller queues (better fairness/delay).
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace caem;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Ablation A — Q_threshold sweep (Scheme 1)",
                      "arming length of the Fig 6 adjustment, paper value 15");

  const std::vector<std::string> thresholds =
      args.fast ? std::vector<std::string>{"5", "15"}
                : std::vector<std::string>{"5", "10", "15", "25", "40"};

  // Engine sweep (file-driven equivalent:
  // examples/scenarios/ablation_qthreshold.scn).
  scenario::ScenarioSpec spec;
  spec.name = "ablation-qthreshold";
  spec.base_config = args.config;
  spec.base_config.traffic_rate_pps = 10.0;
  spec.base_config.initial_energy_j = 1e6;
  spec.base_seed = args.seed;
  spec.replications = args.reps;
  spec.options.max_sim_s = args.fast ? 60.0 : 120.0;
  spec.protocols = {core::protocol_from_string("scheme1")};
  spec.axes.push_back(scenario::Axis{"arm_queue_length", thresholds});
  const scenario::ScenarioResult sweep = scenario::run_scenario(spec);

  util::TableWriter table({"Q_threshold", "mJ/packet", "queue stddev", "mean delay ms",
                           "delivery %", "threshold lowers/s"});
  for (const scenario::PointResult& point : sweep.points) {
    const core::Replicated& summary = point.protocols[0].replicated;
    double lowers = 0.0;
    for (const auto& run : summary.runs) {
      lowers += static_cast<double>(run.threshold_lower_events);
    }
    table.new_row()
        .cell(point.config.arm_queue_length)
        .cell(summary.energy_per_packet_j.mean() * 1e3, 3)
        .cell(summary.queue_stddev.mean(), 2)
        .cell(summary.mean_delay_s.mean() * 1e3, 1)
        .cell(summary.delivery_rate.mean() * 100.0, 1)
        .cell(lowers / static_cast<double>(args.reps) / spec.options.max_sim_s, 2);
  }
  table.render(std::cout);
  std::cout << "\nexpected: energy per packet rises as Q_threshold falls (earlier\n"
               "threshold relief), queue dispersion falls.\n";
  return 0;
}
