// bench_queue — kernel pending-set throughput: LadderQueue vs the
// binary-heap EventQueue, the acceptance harness for the O(1) ladder
// scheduling work.
//
// Workload is the classic DES "hold model" at a fixed pending-set size
// P: preload P events, then each operation pops the earliest event and
// schedules a replacement at now + Exp(1) s, with a 1-in-8 mix of
// cancel-a-random-outstanding + schedule-a-replacement (the MAC timer
// reschedule pattern).  Both implementations consume the identical
// operation stream — same seed, same delay table, same cancel targets
// — so the popped (time, order) stream must match bit-for-bit, which
// the bench asserts via an order-sensitive hash before it reports any
// throughput number.
//
// Operating points come from a measured census, not a guess: sampling
// `Simulator::pending_events()` once per simulated second through
// constant-density caem-scheme1 runs gives a steady 1.75 pending kernel
// events per node (N=1k: mean 1743, peak 1942; N=50k: mean 87583, peak
// 97310).  So the "1k-node" point is P=1750 and the "50k-node" point is
// P=87500.  The sweep spans P=1k to P=4M.
//
// Each point runs kReps times per implementation and reports the best
// rep: the shared 1-vCPU host shows 30-45% run-to-run noise, and
// best-of isolates the structure's cost from scheduler preemption.
// Every rep's pop hash must match across reps AND implementations.
//
// Exit code enforces the PR's claims (BENCH_queue.json carries the
// same verdict for CI):
//   * ladder >= 1.5x heap events/s at the 50k-node operating point;
//   * the ladder's advantage over the heap decays <= 10% from the
//     1k-node to the 50k-node point;
//   * identical pop streams at every point.
//
// Why the decay gate is on the advantage ratio and not raw events/s:
// past ~2MB of pending-set footprint EVERY implementation pays
// compulsory payload traffic — the 64-byte callback must be written at
// schedule and read at pop, with a reuse distance of one full epoch —
// at last-level-cache latency.  A pointer-chase probe on this host
// class measures 40-46 ns/line at the ~6-14MB a 50k-node pending set
// spans (vs ~2 ns in L1), so raw events/s tracks the memory system,
// not the structure: the heap loses ~50% on the identical op stream.
// What the O(1) structure has to prove is that ITS cost stays flat —
// the speedup it delivers at 1k nodes must still be there, undiminished,
// at 50k.  Raw per-implementation decay is reported alongside in
// BENCH_queue.json so nothing is hidden.
//
// Usage: bench_queue [--fast] [seed=<n>] [ops=<n>] [json=<path>]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/ladder_queue.hpp"
#include "sim/pending_set.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"

namespace {

using namespace caem;

// 4096 doubles = 32KB: cycling the delay table stays L1-resident
// instead of sweeping 512KB of L2 through the measured loop.
constexpr std::size_t kDelayTableSize = 1 << 12;
constexpr std::size_t kReservoirSize = 1 << 12;
constexpr std::size_t kOpPoint1kNodes = 1'750;    // 1.75 pending/node, measured
constexpr std::size_t kOpPoint50kNodes = 87'500;  // census above
constexpr double kGateRatioMin = 1.5;
constexpr double kGateDecayMax = 0.10;

struct HoldResult {
  double events_per_sec = 0.0;
  std::uint64_t pop_hash = 0;  // order-sensitive fold of popped times
};

/// Run the hold model on one implementation.  Identical inputs (seed,
/// pending, ops) produce an identical logical op stream regardless of
/// the implementation, so pop_hash is an equivalence oracle.
HoldResult run_hold(sim::QueueKind kind, std::size_t pending, std::uint64_t ops,
                    std::uint64_t seed) {
  const std::unique_ptr<sim::PendingSet> queue = sim::make_pending_set(kind);

  // Pre-generated delays: keeps RNG cost off the measured path (and
  // identical across implementations by construction).
  util::Rng rng(seed, "bench-queue");
  std::vector<double> delays(kDelayTableSize);
  for (double& d : delays) d = rng.exponential_mean(1.0);

  const auto noop = [](double) {};
  std::vector<sim::EventId> reservoir(kReservoirSize, sim::kInvalidEventId);
  double now = 0.0;
  std::size_t delay_at = 0;
  std::uint64_t hash = 1469598103934665603ULL;  // FNV offset basis

  const auto next_delay = [&]() noexcept {
    const double d = delays[delay_at];
    delay_at = (delay_at + 1) & (kDelayTableSize - 1);
    return d;
  };

  for (std::size_t i = 0; i < pending; ++i) {
    reservoir[i & (kReservoirSize - 1)] = queue->schedule(now + next_delay(), noop);
  }

  const auto step = [&](std::uint64_t op) {
    sim::Fired fired = queue->pop();
    now = fired.time_s;
    std::uint64_t bits;
    std::memcpy(&bits, &fired.time_s, sizeof(bits));
    hash = (hash ^ bits) * 1099511628211ULL;  // FNV prime
    reservoir[op & (kReservoirSize - 1)] = queue->schedule(now + next_delay(), noop);
    if ((op & 7) == 0) {
      // Cancel a random outstanding timer and replace it, like a MAC
      // backoff reschedule.  The reservoir index comes from the shared
      // RNG stream, so both implementations target the same logical
      // event; a miss (already fired) is part of the model.
      const std::size_t pick = static_cast<std::size_t>(rng.next()) & (kReservoirSize - 1);
      if (queue->cancel(reservoir[pick])) {
        reservoir[pick] = queue->schedule(now + next_delay(), noop);
      }
    }
  };

  // Warmup: reach steady state (the ladder crosses at least one epoch
  // spread; caches and the slot free list settle).
  const std::uint64_t warmup = ops / 8;
  for (std::uint64_t op = 0; op < warmup; ++op) step(op);

  hash = 1469598103934665603ULL;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t op = warmup; op < warmup + ops; ++op) step(op);
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;

  HoldResult result;
  result.pop_hash = hash;
  result.events_per_sec =
      elapsed.count() > 0.0 ? static_cast<double>(ops) / elapsed.count() : 0.0;
  return result;
}

struct GateReport {
  double ratio_at_1k = 0.0;
  double ratio_at_50k = 0.0;
  double advantage_decay = 1.0;   // 1 - ratio_50k / ratio_1k, the gated quantity
  double ladder_raw_decay = 1.0;  // 1 - ladder_50k / ladder_1k (reported, not gated)
  double heap_raw_decay = 1.0;    // ditto for the heap: the memory-system baseline
};

struct SweepPoint {
  std::size_t pending = 0;
  double heap_eps = 0.0;
  double ladder_eps = 0.0;
  bool streams_match = false;
};

void write_json(const std::vector<SweepPoint>& points, const GateReport& gate, bool streams_ok,
                bool pass, std::uint64_t ops, const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(out,
               "{\n"
               "  \"workload\": \"hold model: pop + schedule(now+Exp(1)), 1/8 cancel+reschedule "
               "mix, %llu measured ops/point, identical op stream both impls\",\n"
               "  \"operating_points\": {\"nodes_1k_pending\": %zu, \"nodes_50k_pending\": %zu},\n"
               "  \"points\": [\n",
               static_cast<unsigned long long>(ops), kOpPoint1kNodes, kOpPoint50kNodes);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(out,
                 "    {\"pending\": %zu, \"heap_events_per_sec\": %.0f, "
                 "\"ladder_events_per_sec\": %.0f, \"ladder_vs_heap\": %.2f, "
                 "\"identical_pop_stream\": %s}%s\n",
                 p.pending, p.heap_eps, p.ladder_eps,
                 p.heap_eps > 0.0 ? p.ladder_eps / p.heap_eps : 0.0,
                 p.streams_match ? "true" : "false", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"ladder_vs_heap_at_1k_nodes\": %.2f,\n"
               "  \"ladder_vs_heap_at_50k_nodes\": %.2f,\n"
               "  \"gate_ratio_min\": %.2f,\n"
               "  \"advantage_decay_1k_to_50k_nodes\": %.3f,\n"
               "  \"gate_advantage_decay_max\": %.2f,\n"
               "  \"ladder_raw_decay_1k_to_50k_nodes\": %.3f,\n"
               "  \"heap_raw_decay_1k_to_50k_nodes\": %.3f,\n"
               "  \"raw_decay_note\": \"raw events/s past ~2MB footprint is bound by "
               "LLC latency on compulsory callback traffic (any impl); the gate holds the "
               "ladder's advantage flat instead\",\n"
               "  \"identical_pop_streams\": %s,\n"
               "  \"pass\": %s\n"
               "}\n",
               gate.ratio_at_1k, gate.ratio_at_50k, kGateRatioMin, gate.advantage_decay,
               kGateDecayMax, gate.ladder_raw_decay, gate.heap_raw_decay,
               streams_ok ? "true" : "false", pass ? "true" : "false");
  std::fclose(out);
  std::printf("\nBENCH_queue -> %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token == "--fast") {
      fast = true;
    } else {
      tokens.push_back(token);
    }
  }
  std::uint64_t seed = 2005;
  std::uint64_t ops = 0;
  std::string json_path = "BENCH_queue.json";
  try {
    const util::Config overrides = util::Config::from_args(tokens);
    fast = overrides.get_bool("fast", fast);
    seed = static_cast<std::uint64_t>(overrides.get_int("seed", 2005));
    ops = static_cast<std::uint64_t>(overrides.get_int("ops", 0));
    json_path = overrides.get_string("json", json_path);
    const std::vector<std::string> typos = overrides.unconsumed();
    if (!typos.empty()) {
      std::cerr << "unknown override key(s):";
      for (const std::string& key : typos) std::cerr << " '" << key << "'";
      std::cerr << "\n";
      return 1;
    }
  } catch (const std::exception& error) {
    std::cerr << "bad arguments: " << error.what() << "\n";
    return 1;
  }
  if (ops == 0) ops = fast ? 2'000'000 : 4'000'000;
  const int reps = fast ? 3 : 5;

  std::vector<std::size_t> sizes{1'000, kOpPoint1kNodes, 10'000, kOpPoint50kNodes};
  if (!fast) {
    sizes.push_back(1'000'000);
    sizes.push_back(4'000'000);
  }

  std::printf("==== bench_queue ====\n");
  std::printf("%10s %16s %16s %8s %8s\n", "pending", "heap ev/s", "ladder ev/s", "ratio",
              "streams");
  std::vector<SweepPoint> points;
  double heap_at_1k = 0.0;
  double heap_at_50k = 0.0;
  double ladder_at_1k = 0.0;
  double ladder_at_50k = 0.0;
  bool streams_ok = true;
  for (const std::size_t pending : sizes) {
    SweepPoint point;
    point.pending = pending;
    // Best-of-reps, alternating implementations so host noise (shared
    // vCPU) hits both evenly; hashes must agree across every rep.
    std::uint64_t heap_hash = 0;
    std::uint64_t ladder_hash = 0;
    point.streams_match = true;
    for (int rep = 0; rep < reps; ++rep) {
      const HoldResult heap = run_hold(sim::QueueKind::kHeap, pending, ops, seed);
      const HoldResult ladder = run_hold(sim::QueueKind::kLadder, pending, ops, seed);
      point.heap_eps = std::max(point.heap_eps, heap.events_per_sec);
      point.ladder_eps = std::max(point.ladder_eps, ladder.events_per_sec);
      if (rep == 0) {
        heap_hash = heap.pop_hash;
        ladder_hash = ladder.pop_hash;
      }
      point.streams_match = point.streams_match && heap.pop_hash == ladder.pop_hash &&
                            heap.pop_hash == heap_hash && ladder.pop_hash == ladder_hash;
    }
    streams_ok = streams_ok && point.streams_match;
    std::printf("%10zu %16.0f %16.0f %7.2fx %8s\n", pending, point.heap_eps, point.ladder_eps,
                point.heap_eps > 0.0 ? point.ladder_eps / point.heap_eps : 0.0,
                point.streams_match ? "match" : "DIVERGE");
    std::fflush(stdout);
    if (pending == kOpPoint50kNodes) {
      heap_at_50k = point.heap_eps;
      ladder_at_50k = point.ladder_eps;
    }
    if (pending == kOpPoint1kNodes) {
      heap_at_1k = point.heap_eps;
      ladder_at_1k = point.ladder_eps;
    }
    points.push_back(point);
  }

  GateReport gate;
  gate.ratio_at_1k = heap_at_1k > 0.0 ? ladder_at_1k / heap_at_1k : 0.0;
  gate.ratio_at_50k = heap_at_50k > 0.0 ? ladder_at_50k / heap_at_50k : 0.0;
  gate.advantage_decay =
      gate.ratio_at_1k > 0.0 ? 1.0 - gate.ratio_at_50k / gate.ratio_at_1k : 1.0;
  gate.ladder_raw_decay = ladder_at_1k > 0.0 ? 1.0 - ladder_at_50k / ladder_at_1k : 1.0;
  gate.heap_raw_decay = heap_at_1k > 0.0 ? 1.0 - heap_at_50k / heap_at_1k : 1.0;
  const bool ratio_ok = gate.ratio_at_50k >= kGateRatioMin;
  const bool decay_ok = gate.advantage_decay <= kGateDecayMax;
  const bool pass = ratio_ok && decay_ok && streams_ok;

  std::printf("\nladder vs heap at the 50k-node point (P=%zu): %.2fx (gate >= %.1fx) -> %s\n",
              kOpPoint50kNodes, gate.ratio_at_50k, kGateRatioMin, ratio_ok ? "pass" : "FAIL");
  std::printf(
      "ladder advantage decay 1k -> 50k nodes: %.1f%% (%.2fx -> %.2fx, gate <= %.0f%%) -> %s\n",
      gate.advantage_decay * 100.0, gate.ratio_at_1k, gate.ratio_at_50k, kGateDecayMax * 100.0,
      decay_ok ? "pass" : "FAIL");
  std::printf(
      "raw events/s decay 1k -> 50k nodes (LLC-bound on this host): ladder %.1f%%, heap %.1f%%\n",
      gate.ladder_raw_decay * 100.0, gate.heap_raw_decay * 100.0);
  std::printf("pop streams identical at every point -> %s\n", streams_ok ? "pass" : "FAIL");
  write_json(points, gate, streams_ok, pass, ops, json_path);
  return pass ? 0 : 1;
}
