// bench_ablation_channel — ablation C: channel dynamics.  CAEM's whole
// premise is that the channel varies on a time scale the MAC can ride:
// sweep the Doppler (fading rate) and compare protocols, plus the
// fading-model family (Jakes vs Rician vs block).
//
// Slow fading (low Doppler): long good and bad runs — Scheme 2 waits
// long but wins big when the channel is good; very fast fading: the CSI
// measured at contention is stale by transmission time, eroding CAEM's
// advantage.
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace caem;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Ablation C — channel dynamics",
                      "Doppler sweep + fading family, all protocols");

  const std::vector<std::string> dopplers =
      args.fast ? std::vector<std::string>{"3"}
                : std::vector<std::string>{"0.5", "1", "3", "10", "30"};

  core::RunOptions options;
  options.max_sim_s = args.fast ? 60.0 : 120.0;

  // Two engine sweeps (file-driven equivalents:
  // examples/scenarios/ablation_channel.scn / ablation_fading.scn).
  scenario::ScenarioSpec doppler_spec;
  doppler_spec.name = "ablation-channel-doppler";
  doppler_spec.base_config = args.config;
  doppler_spec.base_config.initial_energy_j = 1e6;
  doppler_spec.base_seed = args.seed;
  doppler_spec.replications = args.reps;
  doppler_spec.options = options;
  doppler_spec.axes.push_back(scenario::Axis{"channel.doppler_hz", dopplers});
  const scenario::ScenarioResult doppler_sweep = scenario::run_scenario(doppler_spec);

  std::cout << "energy per delivered packet (mJ):\n";
  util::TableWriter table({"doppler Hz", "coherence ms", "pure-leach", "scheme1", "scheme2",
                           "s2 saving %"});
  for (const scenario::PointResult& point : doppler_sweep.points) {
    double energy[3];
    for (std::size_t p = 0; p < point.protocols.size(); ++p) {
      energy[p] = point.protocols[p].replicated.energy_per_packet_j.mean() * 1e3;
    }
    const double doppler = point.config.channel.doppler_hz;
    table.new_row()
        .cell(doppler, 1)
        .cell(0.423 / doppler * 1e3, 0)
        .cell(energy[0], 3)
        .cell(energy[1], 3)
        .cell(energy[2], 3)
        .cell(100.0 * (1.0 - energy[2] / energy[0]), 1);
  }
  table.render(std::cout);

  std::cout << "\nfading family (doppler 3 Hz, Scheme 2 vs pure LEACH):\n";
  scenario::ScenarioSpec fading_spec;
  fading_spec.name = "ablation-channel-fading";
  fading_spec.base_config = args.config;
  fading_spec.base_config.initial_energy_j = 1e6;
  fading_spec.base_seed = args.seed;
  fading_spec.replications = args.reps;
  fading_spec.options = options;
  fading_spec.protocols = {core::protocol_from_string("leach"), core::protocol_from_string("scheme2")};
  fading_spec.axes.push_back(
      scenario::Axis{"channel.fading_kind", {"jakes", "rician", "block"}});
  const scenario::ScenarioResult fading_sweep = scenario::run_scenario(fading_spec);

  util::TableWriter family({"fading", "pure-leach mJ/pkt", "scheme2 mJ/pkt", "saving %"});
  const char* kind_names[] = {"jakes-rayleigh", "rician K=3", "block"};
  for (const scenario::PointResult& point : fading_sweep.points) {
    const double e0 = point.protocols[0].replicated.energy_per_packet_j.mean() * 1e3;
    const double e2 = point.protocols[1].replicated.energy_per_packet_j.mean() * 1e3;
    family.new_row().cell(std::string(kind_names[point.point.index])).cell(e0, 3).cell(e2, 3).cell(
        100.0 * (1.0 - e2 / e0), 1);
  }
  family.render(std::cout);
  std::cout << "\nexpected: savings shrink at very high Doppler (stale CSI) and under the\n"
               "Rician channel (less variance to exploit).\n";
  return 0;
}
