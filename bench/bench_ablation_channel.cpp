// bench_ablation_channel — ablation C: channel dynamics.  CAEM's whole
// premise is that the channel varies on a time scale the MAC can ride:
// sweep the Doppler (fading rate) and compare protocols, plus the
// fading-model family (Jakes vs Rician vs block).
//
// Slow fading (low Doppler): long good and bad runs — Scheme 2 waits
// long but wins big when the channel is good; very fast fading: the CSI
// measured at contention is stale by transmission time, eroding CAEM's
// advantage.
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace caem;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Ablation C — channel dynamics",
                      "Doppler sweep + fading family, all protocols");

  const std::vector<double> dopplers =
      args.fast ? std::vector<double>{3.0} : std::vector<double>{0.5, 1.0, 3.0, 10.0, 30.0};

  core::RunOptions options;
  options.max_sim_s = args.fast ? 60.0 : 120.0;

  std::cout << "energy per delivered packet (mJ):\n";
  util::TableWriter table({"doppler Hz", "coherence ms", "pure-leach", "scheme1", "scheme2",
                           "s2 saving %"});
  for (const double doppler : dopplers) {
    core::NetworkConfig config = args.config;
    config.channel.doppler_hz = doppler;
    config.initial_energy_j = 1e6;
    double energy[3];
    for (const core::Protocol protocol : core::kAllProtocols) {
      const auto summary =
          core::run_replicated(config, protocol, args.seed, args.reps, options);
      energy[static_cast<int>(protocol)] = summary.energy_per_packet_j.mean() * 1e3;
    }
    table.new_row()
        .cell(doppler, 1)
        .cell(0.423 / doppler * 1e3, 0)
        .cell(energy[0], 3)
        .cell(energy[1], 3)
        .cell(energy[2], 3)
        .cell(100.0 * (1.0 - energy[2] / energy[0]), 1);
  }
  table.render(std::cout);

  std::cout << "\nfading family (doppler 3 Hz, Scheme 2 vs pure LEACH):\n";
  util::TableWriter family({"fading", "pure-leach mJ/pkt", "scheme2 mJ/pkt", "saving %"});
  const std::pair<channel::FadingKind, const char*> kinds[] = {
      {channel::FadingKind::kJakesRayleigh, "jakes-rayleigh"},
      {channel::FadingKind::kRician, "rician K=3"},
      {channel::FadingKind::kBlock, "block"},
  };
  for (const auto& [kind, name] : kinds) {
    core::NetworkConfig config = args.config;
    config.channel.fading_kind = kind;
    config.initial_energy_j = 1e6;
    const auto leach = core::run_replicated(config, core::Protocol::kPureLeach, args.seed,
                                            args.reps, options);
    const auto scheme2 = core::run_replicated(config, core::Protocol::kCaemScheme2, args.seed,
                                              args.reps, options);
    const double e0 = leach.energy_per_packet_j.mean() * 1e3;
    const double e2 = scheme2.energy_per_packet_j.mean() * 1e3;
    family.new_row().cell(std::string(name)).cell(e0, 3).cell(e2, 3).cell(
        100.0 * (1.0 - e2 / e0), 1);
  }
  family.render(std::cout);
  std::cout << "\nexpected: savings shrink at very high Doppler (stale CSI) and under the\n"
               "Rician channel (less variance to exploit).\n";
  return 0;
}
