// bench_routing — acceptance harness for the routed-uplink layer.
//
// Two guarantees, both enforced by the exit code:
//
//   1. Zero overhead for DirectUplink: a runtime-registered protocol
//      whose spec pins DirectUplink over the legacy virtual sink runs
//      the SAME physics as the legacy clusterless fast path — every
//      traffic/energy counter must match exactly, and wall clock must
//      stay within a noise margin of the legacy run.
//   2. Greedy routing earns its keep: on a corner-sink field where part
//      of the network cannot reach the sink in one hop, greedy must
//      deliver strictly more packets than direct at the same energy
//      budget (the unreachable half books as drops under direct and is
//      relayed under greedy).
//
// Usage: bench_routing [--fast] [key=value ...]
//   --fast | fast=1   smoke variant: shorter horizons (CI)
//   seed=<n>          master seed (default 2005)
//   json=<path>       output path (default BENCH_routing.json)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/protocol.hpp"
#include "core/simulation_runner.hpp"
#include "routing/routing_strategy.hpp"
#include "util/config.hpp"

namespace {

using namespace caem;

double timed_run(const core::NetworkConfig& config, core::Protocol protocol,
                 std::uint64_t seed, const core::RunOptions& options,
                 core::RunResult* out) {
  const auto start = std::chrono::steady_clock::now();
  core::RunResult result = core::SimulationRunner::run(config, protocol, seed, options);
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  if (out != nullptr) *out = std::move(result);
  return elapsed.count();
}

/// Counters that must match exactly between the legacy clusterless path
/// and the routed DirectUplink clone (same physics, same RNG draws).
bool results_identical(const core::RunResult& a, const core::RunResult& b) {
  return a.generated == b.generated && a.delivered_air == b.delivered_air &&
         a.delivered_self == b.delivered_self && a.dropped_death == b.dropped_death &&
         a.dropped_unreachable == b.dropped_unreachable && a.relay_hops == b.relay_hops &&
         a.executed_events == b.executed_events && a.sim_end_s == b.sim_end_s &&
         a.total_consumed_j == b.total_consumed_j && a.delivery_rate == b.delivery_rate;
}

core::NetworkConfig corner_sink_config() {
  core::NetworkConfig config;
  config.node_count = 100;
  config.field_size_m = 200.0;
  config.ch_fraction = 0.08;
  config.channel.radio_range_m = 150.0;
  config.routing.sink_x_m = 0.0;
  config.routing.sink_y_m = 0.0;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token == "--fast") {
      fast = true;
    } else {
      tokens.push_back(token);
    }
  }
  std::uint64_t seed = 2005;
  std::string json_path = "BENCH_routing.json";
  try {
    const util::Config overrides = util::Config::from_args(tokens);
    fast = overrides.get_bool("fast", fast);
    seed = static_cast<std::uint64_t>(overrides.get_int("seed", 2005));
    json_path = overrides.get_string("json", json_path);
    const std::vector<std::string> typos = overrides.unconsumed();
    if (!typos.empty()) {
      std::cerr << "unknown override key(s):";
      for (const std::string& key : typos) std::cerr << " '" << key << "'";
      std::cerr << "\n";
      return 1;
    }
  } catch (const std::exception& error) {
    std::cerr << "bad arguments: " << error.what() << "\n";
    return 1;
  }

  std::printf("==== bench_routing ====\n");

  // ---- 1. DirectUplink zero-overhead guard -------------------------------
  // The clone pins DirectUplink explicitly; with all routing.* knobs at
  // their defaults the sink is the legacy virtual one, so the physics
  // is identical to the legacy clusterless fast path and every counter
  // must match bit-for-bit.  Wall clock is the overhead under test.
  core::ProtocolSpec clone;
  clone.name = "bench-direct-routed";
  clone.summary = "bench_routing: legacy direct via the routed uplink path";
  clone.policy = queueing::ThresholdPolicy::kNone;
  clone.clustering = nullptr;
  clone.routing_name = "direct";
  clone.routing = [](const core::NetworkConfig&) {
    return std::make_unique<routing::DirectUplink>();
  };
  const core::Protocol routed_direct = core::ProtocolRegistry::instance().add(std::move(clone));
  const core::Protocol legacy_direct = core::protocol_from_string("direct");

  core::NetworkConfig overhead_config;  // paper defaults, clusterless uplink
  core::RunOptions overhead_options;
  overhead_options.max_sim_s = fast ? 60.0 : 200.0;

  const int reps = 3;
  double legacy_wall = 1e9;
  double routed_wall = 1e9;
  core::RunResult legacy_result;
  core::RunResult routed_result;
  for (int r = 0; r < reps; ++r) {
    legacy_wall =
        std::min(legacy_wall, timed_run(overhead_config, legacy_direct, seed, overhead_options,
                                        &legacy_result));
    routed_wall =
        std::min(routed_wall, timed_run(overhead_config, routed_direct, seed, overhead_options,
                                        &routed_result));
  }
  const bool identical = results_identical(legacy_result, routed_result);
  const double ratio = legacy_wall > 0.0 ? routed_wall / legacy_wall : 0.0;
  // Generous noise margin: the routed path adds one virtual call and a
  // trivial plan per packet; anything past 25% is a real regression.
  const bool overhead_ok = identical && ratio > 0.0 && ratio <= 1.25;
  std::printf("direct uplink: legacy %.3f s, routed %.3f s, ratio %.3fx, counters %s -> %s\n",
              legacy_wall, routed_wall, ratio, identical ? "identical" : "DIVERGED",
              overhead_ok ? "ok" : "FAIL");

  // ---- 2. greedy beats direct at the corner sink -------------------------
  const core::NetworkConfig base = corner_sink_config();
  core::RunOptions corner_options;
  corner_options.max_sim_s = fast ? 60.0 : 300.0;
  const core::Protocol scheme1 = core::protocol_from_string("caem-scheme1");

  core::NetworkConfig direct_config = base;
  direct_config.routing.kind = "direct";
  core::NetworkConfig greedy_config = base;
  greedy_config.routing.kind = "greedy";

  core::RunResult direct_run;
  core::RunResult greedy_run;
  (void)timed_run(direct_config, scheme1, seed, corner_options, &direct_run);
  (void)timed_run(greedy_config, scheme1, seed, corner_options, &greedy_run);
  const bool greedy_wins = greedy_run.delivered_air > direct_run.delivered_air;
  std::printf(
      "corner sink:   direct %llu delivered (%llu unreachable), greedy %llu delivered "
      "(%llu unreachable, %llu relay hops) -> %s\n",
      static_cast<unsigned long long>(direct_run.delivered_air),
      static_cast<unsigned long long>(direct_run.dropped_unreachable),
      static_cast<unsigned long long>(greedy_run.delivered_air),
      static_cast<unsigned long long>(greedy_run.dropped_unreachable),
      static_cast<unsigned long long>(greedy_run.relay_hops),
      greedy_wins ? "greedy wins" : "FAIL");

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"workload\": \"clusterless defaults (%.0f s) + corner sink 200 m field, "
               "range 150 m (%.0f s), seed %llu\",\n"
               "  \"direct_uplink_overhead\": {\n"
               "    \"legacy_wall_s\": %.3f,\n"
               "    \"routed_wall_s\": %.3f,\n"
               "    \"ratio\": %.3f,\n"
               "    \"counters_identical\": %s\n"
               "  },\n"
               "  \"greedy_vs_direct\": {\n"
               "    \"delivered_direct\": %llu,\n"
               "    \"delivered_greedy\": %llu,\n"
               "    \"unreachable_direct\": %llu,\n"
               "    \"unreachable_greedy\": %llu,\n"
               "    \"relay_hops_greedy\": %llu,\n"
               "    \"greedy_wins\": %s\n"
               "  }\n"
               "}\n",
               overhead_options.max_sim_s, corner_options.max_sim_s,
               static_cast<unsigned long long>(seed), legacy_wall, routed_wall, ratio,
               identical ? "true" : "false",
               static_cast<unsigned long long>(direct_run.delivered_air),
               static_cast<unsigned long long>(greedy_run.delivered_air),
               static_cast<unsigned long long>(direct_run.dropped_unreachable),
               static_cast<unsigned long long>(greedy_run.dropped_unreachable),
               static_cast<unsigned long long>(greedy_run.relay_hops),
               greedy_wins ? "true" : "false");
  std::fclose(out);
  std::printf("\nBENCH_routing -> %s\n", json_path.c_str());
  return overhead_ok && greedy_wins ? 0 : 1;
}
