// bench_fig9_nodes_alive — reproduces Figure 9: number of sensor nodes
// alive versus elapsed time, run to network extinction.
//
// Paper shape: curves stay flat then drop abruptly (LEACH rotation
// equalises energy use); lifetime gains ~+40% (Scheme 1) and ~+130%
// (Scheme 2) over pure LEACH at the 20%-dead definition.
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace caem;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 9 — nodes alive vs time",
                      "load 5 pkt/s/node, run to extinction");

  core::RunOptions options;
  options.max_sim_s = args.fast ? 400.0 : 4000.0;
  options.run_to_death = true;

  const auto points = bench::all_protocols(args.config, args.seed, args.reps, options);

  // Grid out to the longest-lived protocol's extinction.
  double horizon = 0.0;
  for (const auto& replicated : points) {
    for (const auto& run : replicated.runs) horizon = std::max(horizon, run.sim_end_s);
  }

  util::TableWriter table({"t (s)", "pure-leach alive", "caem-scheme1 alive",
                           "caem-scheme2 alive"});
  const std::vector<double> grid = util::uniform_grid(0.0, horizon, 15);
  std::vector<util::TimeSeries> folded;
  folded.reserve(points.size());
  for (const auto& replicated : points) {
    std::vector<const util::TimeSeries*> traces;
    traces.reserve(replicated.runs.size());
    for (const auto& run : replicated.runs) traces.push_back(&run.nodes_alive);
    // Step (sample-and-hold) fold: alive counts are events, not ramps.
    folded.push_back(util::fold_mean(traces, grid, util::FoldMode::kStep));
  }
  for (std::size_t i = 0; i < grid.size(); ++i) {
    table.new_row().cell(grid[i], 0);
    for (const util::TimeSeries& series : folded) table.cell(series.points()[i].value, 1);
  }
  table.render(std::cout);

  std::cout << "\nlifetime (network dead at " << args.config.dead_fraction * 100
            << "% exhausted; mean of " << args.reps << " reps):\n";
  util::TableWriter life({"protocol", "first death s", "network death s", "last death s"});
  const char* names[] = {"pure-leach", "caem-scheme1", "caem-scheme2"};
  for (std::size_t p = 0; p < points.size(); ++p) {
    double last = 0.0;
    for (const auto& run : points[p].runs) {
      last += run.lifetime.last_death_s >= 0 ? run.lifetime.last_death_s : run.sim_end_s;
    }
    life.new_row()
        .cell(std::string(names[p]))
        .cell(points[p].first_death_s.mean(), 1)
        .cell(points[p].lifetime_s.mean(), 1)
        .cell(last / static_cast<double>(points[p].runs.size()), 1);
  }
  life.render(std::cout);

  const double base = points[0].lifetime_s.mean();
  std::cout << "\nlifetime gain vs pure LEACH: scheme1 "
            << util::format_fixed(100.0 * (points[1].lifetime_s.mean() / base - 1.0), 1)
            << "%  scheme2 "
            << util::format_fixed(100.0 * (points[2].lifetime_s.mean() / base - 1.0), 1)
            << "%  (paper: ~+40% and ~+130%)\n";
  return 0;
}
