// bench_ext_network_performance — the network-performance results the
// conference paper defers to its long version (Section IV): average
// packet delay, aggregate throughput, and successful delivery rate
// versus traffic load, for all three protocols.
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace caem;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Extension — network performance vs load",
                      "delay / throughput / delivery rate (long-version metrics)");

  const std::vector<double> loads =
      args.fast ? std::vector<double>{5.0, 20.0} : std::vector<double>{5, 10, 15, 20, 25, 30};

  core::RunOptions options;
  options.max_sim_s = args.fast ? 60.0 : 120.0;

  struct Job {
    double load;
    core::Protocol protocol;
    std::uint64_t seed;
  };
  std::vector<Job> jobs;
  for (const double load : loads) {
    for (const core::Protocol protocol : core::kAllProtocols) {
      for (std::size_t rep = 0; rep < args.reps; ++rep) {
        jobs.push_back({load, protocol, args.seed + rep});
      }
    }
  }
  const auto results = core::parallel_runs(jobs.size(), [&](std::size_t i) {
    core::NetworkConfig config = args.config;
    config.traffic_rate_pps = jobs[i].load;
    config.initial_energy_j = 1e6;  // steady-state performance, no deaths
    return core::SimulationRunner::run(config, jobs[i].protocol, jobs[i].seed, options);
  });

  const char* names[] = {"pure-leach", "caem-scheme1", "caem-scheme2"};
  for (int p = 0; p < 3; ++p) {
    std::cout << "\n" << names[p] << ":\n";
    util::TableWriter table({"load pkt/s", "mean delay ms", "p95 delay ms",
                             "throughput kbps", "delivery %", "collisions"});
    for (const double load : loads) {
      double delay = 0, p95 = 0, throughput = 0, delivery = 0, collisions = 0;
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (jobs[i].load != load || static_cast<int>(jobs[i].protocol) != p) continue;
        delay += results[i].mean_delay_s;
        p95 += results[i].p95_delay_s;
        throughput += results[i].throughput_bps;
        delivery += results[i].delivery_rate;
        collisions += static_cast<double>(results[i].collisions);
      }
      const auto reps = static_cast<double>(args.reps);
      table.new_row()
          .cell(load, 0)
          .cell(delay / reps * 1e3, 1)
          .cell(p95 / reps * 1e3, 1)
          .cell(throughput / reps / 1e3, 1)
          .cell(delivery / reps * 100.0, 1)
          .cell(collisions / reps, 0);
    }
    table.render(std::cout);
  }
  std::cout << "\nexpected: scheme2 trades delay/delivery for energy (buffering until the\n"
               "channel is excellent); scheme1 recovers most of the performance.\n";
  return 0;
}
