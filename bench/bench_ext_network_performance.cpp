// bench_ext_network_performance — the network-performance results the
// conference paper defers to its long version (Section IV): average
// packet delay, aggregate throughput, and successful delivery rate
// versus traffic load, for all three protocols.
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace caem;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Extension — network performance vs load",
                      "delay / throughput / delivery rate (long-version metrics)");

  const std::vector<std::string> loads =
      args.fast ? std::vector<std::string>{"5", "20"}
                : std::vector<std::string>{"5", "10", "15", "20", "25", "30"};

  // Engine sweep (file-driven equivalent:
  // examples/scenarios/ext_network_performance.scn).
  scenario::ScenarioSpec spec;
  spec.name = "ext-network-performance";
  spec.base_config = args.config;
  spec.base_config.initial_energy_j = 1e6;  // steady-state performance, no deaths
  spec.base_seed = args.seed;
  spec.replications = args.reps;
  spec.options.max_sim_s = args.fast ? 60.0 : 120.0;
  spec.axes.push_back(scenario::Axis{"traffic_rate_pps", loads});
  const scenario::ScenarioResult sweep = scenario::run_scenario(spec);

  const char* names[] = {"pure-leach", "caem-scheme1", "caem-scheme2"};
  for (std::size_t p = 0; p < 3; ++p) {
    std::cout << "\n" << names[p] << ":\n";
    util::TableWriter table({"load pkt/s", "mean delay ms", "p95 delay ms",
                             "throughput kbps", "delivery %", "collisions"});
    for (const scenario::PointResult& point : sweep.points) {
      double delay = 0, p95 = 0, throughput = 0, delivery = 0, collisions = 0;
      for (const auto& run : point.protocols[p].replicated.runs) {
        delay += run.mean_delay_s;
        p95 += run.p95_delay_s;
        throughput += run.throughput_bps;
        delivery += run.delivery_rate;
        collisions += static_cast<double>(run.collisions);
      }
      const auto reps = static_cast<double>(args.reps);
      table.new_row()
          .cell(point.config.traffic_rate_pps, 0)
          .cell(delay / reps * 1e3, 1)
          .cell(p95 / reps * 1e3, 1)
          .cell(throughput / reps / 1e3, 1)
          .cell(delivery / reps * 100.0, 1)
          .cell(collisions / reps, 0);
    }
    table.render(std::cout);
  }
  std::cout << "\nexpected: scheme2 trades delay/delivery for energy (buffering until the\n"
               "channel is excellent); scheme1 recovers most of the performance.\n";
  return 0;
}
