// bench_fig8_remaining_energy — reproduces Figure 8: average remaining
// energy per sensor versus elapsed time (0..600 s), traffic load 5
// pkt/s/node, 10 J initial energy, all three protocols.
//
// Paper shape: pure LEACH drains fastest; CAEM Scheme 2 (fixed highest
// threshold) slowest; Scheme 1 in between.
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace caem;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 8 — average remaining energy vs time",
                      "load 5 pkt/s/node, 10 J batteries, 0..600 s");

  core::RunOptions options;
  options.max_sim_s = args.fast ? 120.0 : 600.0;

  const auto points = bench::all_protocols(args.config, args.seed, args.reps, options);

  // Cross-replication mean of each protocol's energy trace (the same
  // fold the engine's `output.trace` artifacts use).
  const std::vector<double> grid = util::uniform_grid(0.0, options.max_sim_s, 13);
  std::vector<util::TimeSeries> folded;
  folded.reserve(points.size());
  for (const auto& replicated : points) {
    std::vector<const util::TimeSeries*> traces;
    traces.reserve(replicated.runs.size());
    for (const auto& run : replicated.runs) traces.push_back(&run.avg_remaining_energy);
    folded.push_back(util::fold_mean(traces, grid, util::FoldMode::kLinear));
  }

  util::TableWriter table({"t (s)", "pure-leach (J)", "caem-scheme1 (J)", "caem-scheme2 (J)"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    table.new_row().cell(grid[i], 0);
    for (const util::TimeSeries& series : folded) table.cell(series.points()[i].value, 3);
  }
  table.render(std::cout);

  std::cout << "\ntotal consumed over the horizon (J, mean of " << args.reps << " reps):\n";
  util::TableWriter totals({"protocol", "consumed J", "delivered", "delivery %"});
  const char* names[] = {"pure-leach", "caem-scheme1", "caem-scheme2"};
  for (std::size_t p = 0; p < points.size(); ++p) {
    double delivered = 0.0;
    for (const auto& run : points[p].runs) delivered += static_cast<double>(run.delivered_air);
    totals.new_row()
        .cell(std::string(names[p]))
        .cell(points[p].total_consumed_j.mean(), 2)
        .cell(delivered / static_cast<double>(points[p].runs.size()), 1)
        .cell(100.0 * points[p].delivery_rate.mean(), 1);
  }
  totals.render(std::cout);
  const double leach = points[0].total_consumed_j.mean();
  std::cout << "\nenergy saving vs pure LEACH: scheme1 "
            << util::format_fixed(100.0 * (1.0 - points[1].total_consumed_j.mean() / leach), 1)
            << "%, scheme2 "
            << util::format_fixed(100.0 * (1.0 - points[2].total_consumed_j.mean() / leach), 1)
            << "%  (paper: CAEM saves up to ~40% energy)\n";
  return 0;
}
