// bench_fig8_remaining_energy — reproduces Figure 8: average remaining
// energy per sensor versus elapsed time (0..600 s), traffic load 5
// pkt/s/node, 10 J initial energy, all three protocols.
//
// Paper shape: pure LEACH drains fastest; CAEM Scheme 2 (fixed highest
// threshold) slowest; Scheme 1 in between.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace caem;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 8 — average remaining energy vs time",
                      "load 5 pkt/s/node, 10 J batteries, 0..600 s");

  core::RunOptions options;
  options.max_sim_s = args.fast ? 120.0 : 600.0;

  const auto points = bench::all_protocols(args.config, args.seed, args.reps, options);

  util::TableWriter table({"t (s)", "pure-leach (J)", "caem-scheme1 (J)", "caem-scheme2 (J)"});
  const double step = options.max_sim_s / 12.0;
  for (double t = 0.0; t <= options.max_sim_s + 1e-9; t += step) {
    table.new_row().cell(t, 0);
    for (const auto& replicated : points) {
      // Average the energy trace across replications at this time.
      double sum = 0.0;
      for (const auto& run : replicated.runs) sum += run.avg_remaining_energy.value_at(t);
      table.cell(sum / static_cast<double>(replicated.runs.size()), 3);
    }
  }
  table.render(std::cout);

  std::cout << "\ntotal consumed over the horizon (J, mean of " << args.reps << " reps):\n";
  util::TableWriter totals({"protocol", "consumed J", "delivered", "delivery %"});
  const char* names[] = {"pure-leach", "caem-scheme1", "caem-scheme2"};
  for (std::size_t p = 0; p < points.size(); ++p) {
    totals.new_row()
        .cell(std::string(names[p]))
        .cell(points[p].total_consumed_j.mean(), 2)
        .cell(points[p].runs[0].delivered_air)
        .cell(100.0 * points[p].delivery_rate.mean(), 1);
  }
  totals.render(std::cout);
  const double leach = points[0].total_consumed_j.mean();
  std::cout << "\nenergy saving vs pure LEACH: scheme1 "
            << util::format_fixed(100.0 * (1.0 - points[1].total_consumed_j.mean() / leach), 1)
            << "%, scheme2 "
            << util::format_fixed(100.0 * (1.0 - points[2].total_consumed_j.mean() / leach), 1)
            << "%  (paper: CAEM saves up to ~40% energy)\n";
  return 0;
}
