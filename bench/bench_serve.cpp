// bench_serve — acceptance harness for `caem serve` and the
// utility-managed result store (service/).
//
// Phase A exercises the full service stack over a REAL loopback HTTP
// round-trip, exactly the path `caem submit --wait` takes: start the
// service + endpoint in-process, POST a sweep, poll its progress
// document to completion (measuring per-poll latency — the document is
// served from atomics under a mutex and must stay cheap while K drain
// threads compute), then fetch the rendered artifacts and compare them
// BYTE-IDENTICALLY against a direct single-process run of the same
// scenario text.  Identity is the service's core promise: submitting
// through the daemon must change operational posture, never results.
//
// Phase B checks the janitor's eviction POLICY on a synthetic store
// with known per-entry utilities (touches x wall_ms / bytes): with the
// budget set to the exact byte-sum of the top-K entries, one sweep must
// evict precisely the N-K lowest-utility entries and nothing else; a
// second sweep with the lowest-utility entry pinned must spare it even
// though the store then stays over budget.
//
// Exit code enforces the PR's acceptance gates: artifacts identical,
// sweep reached "done", eviction in exact utility order, pins
// respected.
//
// Usage: bench_serve [--fast] [key=value ...]
//   workers=<n>   service drain threads (default 2)
//   seed=<n>      master seed (default 2005)
//   sim_s=<t>     horizon per cell (default 8)
//   json=<path>   output path (default BENCH_serve.json)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/simulation_runner.hpp"
#include "scenario/engine.hpp"
#include "scenario/result_cache.hpp"
#include "scenario/scenario_spec.hpp"
#include "service/cache_janitor.hpp"
#include "service/http_endpoint.hpp"
#include "service/sweep_service.hpp"
#include "util/config.hpp"

namespace {

using namespace caem;
namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

/// The scenario text POSTed to the service and run directly for the
/// reference — byte identity starts from literally the same bytes in.
std::string scenario_text(std::uint64_t seed, double sim_s, bool fast) {
  std::ostringstream text;
  text << "scenario.name = bench-serve\n"
          "scenario.protocols = leach,scheme2\n"
          "scenario.seed = "
       << seed
       << "\n"
          "scenario.reps = 2\n"
          "scenario.max_sim_s = "
       << sim_s
       << "\n"
          "sweep.traffic_rate_pps = "
       << (fast ? "list:3,6" : "list:3,4,5,6")
       << "\n"
          "node_count = 10\n"
          "field_size_m = 40\n"
          "ch_fraction = 0.2\n"
          "round_duration_s = 5\n";
  return text.str();
}

double ms_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token == "--fast") {
      fast = true;
    } else {
      tokens.push_back(token);
    }
  }
  std::uint64_t seed = 2005;
  double sim_s = 8.0;
  std::size_t workers = 2;
  std::string json_path = "BENCH_serve.json";
  try {
    const util::Config overrides = util::Config::from_args(tokens);
    fast = overrides.get_bool("fast", fast);
    seed = static_cast<std::uint64_t>(overrides.get_int("seed", 2005));
    sim_s = overrides.get_double("sim_s", 8.0);
    workers = static_cast<std::size_t>(overrides.get_int("workers", 2));
    json_path = overrides.get_string("json", json_path);
    const std::vector<std::string> typos = overrides.unconsumed();
    if (!typos.empty()) {
      std::cerr << "unknown override key(s):";
      for (const std::string& key : typos) std::cerr << " '" << key << "'";
      std::cerr << "\n";
      return 1;
    }
  } catch (const std::exception& error) {
    std::cerr << "bad arguments: " << error.what() << "\n";
    return 1;
  }
  if (workers < 1) {
    std::cerr << "workers must be >= 1\n";
    return 1;
  }

  const std::string text = scenario_text(seed, sim_s, fast);
  std::printf("==== bench_serve ====\n");

  // -- Phase A reference: direct single-process run of the same text --
  const fs::path scratch =
      fs::temp_directory_path() / ("bench_serve_" + std::to_string(::getpid()));
  fs::remove_all(scratch);
  fs::create_directories(scratch / "ref");
  scenario::ScenarioSpec direct =
      scenario::ScenarioSpec::from_config(util::Config::from_text(text));
  direct.csv_path = (scratch / "ref" / "out.csv").string();
  direct.json_path = (scratch / "ref" / "out.json").string();
  const std::size_t jobs = direct.total_jobs();
  std::printf("sweep: %zu cell(s), %zu service drain thread(s)\n", jobs, workers);
  const auto ref_start = std::chrono::steady_clock::now();
  const scenario::ScenarioResult reference = scenario::run_scenario(direct);
  std::ostringstream ref_log;
  scenario::write_outputs(reference, direct, ref_log);
  const double direct_ms = ms_since(ref_start);
  const std::string reference_csv = read_file(direct.csv_path);
  const std::string reference_json = read_file(direct.json_path);

  // -- Phase A: service round-trip over loopback HTTP --
  service::ServeConfig config;
  config.store_dir = (scratch / "store").string();
  config.drain_threads = workers;
  config.lease_s = 10.0;
  config.janitor_interval_s = 0.0;  // phase B owns eviction
  service::SweepService service(config);
  service::HttpEndpoint endpoint(0, [&service](const service::HttpRequest& request) {
    return service.handle(request);
  });
  std::printf("service: listening on 127.0.0.1:%u\n", endpoint.port());

  const auto submit_start = std::chrono::steady_clock::now();
  const service::HttpResponse created =
      service::http_request(endpoint.port(), "POST", "/sweeps", text);
  bool done = false;
  bool artifacts_identical = false;
  double submit_to_done_ms = 0.0;
  double poll_total_ms = 0.0;
  double poll_max_ms = 0.0;
  std::size_t polls = 0;
  if (created.status != 201) {
    std::fprintf(stderr, "submit failed: %d %s\n", created.status, created.body.c_str());
  } else {
    while (ms_since(submit_start) < 300000.0) {
      const auto poll_start = std::chrono::steady_clock::now();
      const service::HttpResponse status =
          service::http_request(endpoint.port(), "GET", "/sweeps/s1");
      const double poll_ms = ms_since(poll_start);
      poll_total_ms += poll_ms;
      poll_max_ms = std::max(poll_max_ms, poll_ms);
      ++polls;
      if (status.status != 200) break;
      if (contains(status.body, "\"state\":\"done\"")) {
        done = true;
        break;
      }
      if (contains(status.body, "\"state\":\"failed\"") ||
          contains(status.body, "\"state\":\"cancelled\"")) {
        std::fprintf(stderr, "sweep did not finish: %s\n", status.body.c_str());
        break;
      }
    }
    submit_to_done_ms = ms_since(submit_start);
    if (done) {
      const service::HttpResponse csv =
          service::http_request(endpoint.port(), "GET", "/sweeps/s1/artifacts/out.csv");
      const service::HttpResponse json =
          service::http_request(endpoint.port(), "GET", "/sweeps/s1/artifacts/out.json");
      artifacts_identical = csv.status == 200 && json.status == 200 &&
                            csv.body == reference_csv && json.body == reference_json;
    }
  }
  const double poll_mean_ms = polls > 0 ? poll_total_ms / static_cast<double>(polls) : 0.0;
  endpoint.stop();
  service.stop();
  std::printf("submit -> done: %.0f ms over HTTP (%zu poll(s), mean %.2f ms, max %.2f ms); "
              "direct run %.0f ms\n",
              submit_to_done_ms, polls, poll_mean_ms, poll_max_ms, direct_ms);
  std::printf("artifacts %s the direct run\n",
              artifacts_identical ? "MATCH" : "DIFFER FROM");

  // -- Phase B: eviction policy on a synthetic store --
  const fs::path policy_store = scratch / "policy";
  const scenario::ResultCache cache(policy_store.string());
  const std::size_t entries_total = 24;
  const std::size_t keep = 8;
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < entries_total; ++i) {
    core::RunResult result;
    result.wall_ms = 50.0 + 10.0 * static_cast<double>(i);
    char digest[17];
    std::snprintf(digest, sizeof(digest), "%016zx", i);
    const std::string path =
        (policy_store / digest / ("leach_s" + std::to_string(i) + "_h8_d0.json")).string();
    cache.store(path, result);
    for (std::size_t t = 0; t < i; ++t) cache.touch(path);  // utility ascends with i
    paths.push_back(path);
  }
  // Rank by the janitor's own score from the actual on-disk weights,
  // then set the budget to the exact byte-sum of the top `keep` — one
  // sweep must evict precisely the rest, in ascending-utility order.
  std::vector<scenario::CacheEntryInfo> infos = cache.enumerate();
  std::sort(infos.begin(), infos.end(),
            [](const scenario::CacheEntryInfo& a, const scenario::CacheEntryInfo& b) {
              const double ua = static_cast<double>(a.touches) * a.wall_ms /
                                static_cast<double>(a.bytes);
              const double ub = static_cast<double>(b.touches) * b.wall_ms /
                                static_cast<double>(b.bytes);
              return ua > ub;
            });
  std::uint64_t budget = 0;
  std::set<std::string> expected_survivors;
  for (std::size_t i = 0; i < keep && i < infos.size(); ++i) {
    budget += infos[i].bytes;
    expected_survivors.insert(infos[i].path);
  }
  service::CacheJanitor janitor(policy_store.string(), budget);
  const auto sweep_start = std::chrono::steady_clock::now();
  const service::JanitorReport report = janitor.sweep_once();
  const double janitor_sweep_ms = ms_since(sweep_start);
  std::set<std::string> survivors;
  for (const scenario::CacheEntryInfo& entry : cache.enumerate()) survivors.insert(entry.path);
  const bool eviction_order_correct =
      report.evicted == entries_total - keep && survivors == expected_survivors;
  std::printf("janitor: %zu/%zu entr(ies) evicted to fit %llu bytes in %.2f ms -> %s\n",
              report.evicted, report.entries,
              static_cast<unsigned long long>(report.budget_bytes), janitor_sweep_ms,
              eviction_order_correct ? "exact utility order" : "WRONG SET SURVIVED");

  // Pins: the lowest-utility survivor pinned, budget forcing eviction —
  // it must be spared even though the store stays over budget.
  const std::string pinned = infos[keep - 1].path;  // lowest utility still on disk
  service::CacheJanitor pinning(policy_store.string(), 1,
                                [&pinned] { return std::vector<std::string>{pinned}; });
  const service::JanitorReport pin_report = pinning.sweep_once();
  const bool pin_respected = fs::exists(pinned) && pin_report.pinned_kept >= 1;
  std::printf("pins: lowest-utility entry %s under a 1-byte budget (%zu spared)\n",
              pin_respected ? "survived" : "WAS EVICTED", pin_report.pinned_kept);
  fs::remove_all(scratch);

  const bool pass = done && artifacts_identical && eviction_order_correct && pin_respected;

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"workload\": \"%zu-cell sweep submitted over loopback HTTP, %zu drain "
               "thread(s); synthetic %zu-entry store for eviction policy\",\n"
               "  \"jobs\": %zu,\n"
               "  \"workers\": %zu,\n"
               "  \"direct_run_ms\": %.1f,\n"
               "  \"submit_to_done_ms\": %.1f,\n"
               "  \"status_polls\": %zu,\n"
               "  \"poll_mean_ms\": %.3f,\n"
               "  \"poll_max_ms\": %.3f,\n"
               "  \"artifacts_identical\": %s,\n"
               "  \"store_entries\": %zu,\n"
               "  \"evicted\": %zu,\n"
               "  \"janitor_sweep_ms\": %.3f,\n"
               "  \"eviction_order_correct\": %s,\n"
               "  \"pin_respected\": %s,\n"
               "  \"pass\": %s\n"
               "}\n",
               jobs, workers, entries_total, jobs, workers, direct_ms, submit_to_done_ms, polls,
               poll_mean_ms, poll_max_ms, artifacts_identical ? "true" : "false", entries_total,
               report.evicted, janitor_sweep_ms, eviction_order_correct ? "true" : "false",
               pin_respected ? "true" : "false", pass ? "true" : "false");
  std::fclose(out);
  std::printf("\nBENCH_serve -> %s\n", json_path.c_str());
  return pass ? 0 : 1;
}
