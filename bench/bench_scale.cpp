// bench_scale — wall-clock scaling of one whole-network run vs node
// count, the acceptance harness for the city-scale work (spatial
// cluster formation, in-range lazy links, SoA hot state).
//
// The sweep holds node DENSITY constant (the field grows as sqrt(N)) so
// a node's neighborhood — and therefore the per-node work an
// O(N * neighbors) simulator should do — stays fixed while N grows.
// Every point runs with the city-scale knobs on (radio_range_m = 150,
// auto spatial bin); the headline number is the wall-time growth from
// N=1k to N=10k, which must stay strictly below the 100x a quadratic
// simulator would show.
//
// Usage: bench_scale [--fast] [key=value ...]
//   --fast | fast=1   smoke sweep: N up to 10k, shorter horizon
//   seed=<n>          master seed (default 2005)
//   sim_s=<t>         horizon per point (default 40, fast 20)
//   json=<path>       output path (default BENCH_scale.json)
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/protocol.hpp"
#include "core/simulation_runner.hpp"
#include "util/config.hpp"

namespace {

using namespace caem;

struct ScalePoint {
  std::size_t n = 0;
  double field_size_m = 0.0;
  double wall_s = 0.0;
  std::uint64_t events = 0;
  double sim_end_s = 0.0;
};

ScalePoint run_point(std::size_t n, std::uint64_t seed, double sim_s) {
  core::NetworkConfig config;
  config.node_count = n;
  // Constant density: the paper's 100 nodes / (100 m)^2.
  config.field_size_m = 100.0 * std::sqrt(static_cast<double>(n) / 100.0);
  config.traffic_rate_pps = 1.0;
  config.channel.radio_range_m = 150.0;
  config.channel.spatial_bin_m = 0.0;  // auto
  core::RunOptions options;
  options.max_sim_s = sim_s;
  options.run_to_death = false;

  const core::Protocol protocol = core::protocol_from_string("caem-scheme1");
  ScalePoint point;
  point.n = n;
  point.field_size_m = config.field_size_m;
  const auto start = std::chrono::steady_clock::now();
  const core::RunResult result = core::SimulationRunner::run(config, protocol, seed, options);
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  point.wall_s = elapsed.count();
  point.events = result.executed_events;
  point.sim_end_s = result.sim_end_s;
  return point;
}

void write_json(const std::vector<ScalePoint>& points, double growth_1k_10k,
                bool sub_quadratic, double sim_s, const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(out,
               "{\n"
               "  \"workload\": \"caem-scheme1, constant density, radio_range_m=150, "
               "auto spatial bin, %.0f s horizon per point\",\n"
               "  \"points\": [\n",
               sim_s);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ScalePoint& p = points[i];
    std::fprintf(out,
                 "    {\"n\": %zu, \"field_size_m\": %.1f, \"wall_s\": %.3f, "
                 "\"events\": %llu, \"events_per_sec\": %.0f}%s\n",
                 p.n, p.field_size_m, p.wall_s, static_cast<unsigned long long>(p.events),
                 p.wall_s > 0.0 ? static_cast<double>(p.events) / p.wall_s : 0.0,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"wall_growth_1k_to_10k\": %.2f,\n"
               "  \"quadratic_would_be\": 100.0,\n"
               "  \"sub_quadratic\": %s\n"
               "}\n",
               growth_1k_10k, sub_quadratic ? "true" : "false");
  std::fclose(out);
  std::printf("\nBENCH_scale -> %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token == "--fast") {
      fast = true;
    } else {
      tokens.push_back(token);
    }
  }
  std::uint64_t seed = 2005;
  double sim_s = 0.0;
  std::string json_path = "BENCH_scale.json";
  try {
    const util::Config overrides = util::Config::from_args(tokens);
    fast = overrides.get_bool("fast", fast);
    seed = static_cast<std::uint64_t>(overrides.get_int("seed", 2005));
    sim_s = overrides.get_double("sim_s", 0.0);
    json_path = overrides.get_string("json", json_path);
    const std::vector<std::string> typos = overrides.unconsumed();
    if (!typos.empty()) {
      std::cerr << "unknown override key(s):";
      for (const std::string& key : typos) std::cerr << " '" << key << "'";
      std::cerr << "\n";
      return 1;
    }
  } catch (const std::exception& error) {
    std::cerr << "bad arguments: " << error.what() << "\n";
    return 1;
  }
  if (sim_s <= 0.0) sim_s = fast ? 20.0 : 40.0;

  std::vector<std::size_t> sizes{100, 1000, 10000};
  if (!fast) {
    sizes.push_back(50000);
    sizes.push_back(100000);
  }

  std::printf("==== bench_scale ====\n");
  std::printf("%8s %12s %10s %14s %14s\n", "nodes", "field (m)", "wall (s)", "events",
              "events/s");
  std::vector<ScalePoint> points;
  double wall_1k = 0.0;
  double wall_10k = 0.0;
  for (const std::size_t n : sizes) {
    const ScalePoint point = run_point(n, seed, sim_s);
    std::printf("%8zu %12.1f %10.3f %14llu %14.0f\n", point.n, point.field_size_m,
                point.wall_s, static_cast<unsigned long long>(point.events),
                point.wall_s > 0.0 ? static_cast<double>(point.events) / point.wall_s : 0.0);
    std::fflush(stdout);
    if (point.n == 1000) wall_1k = point.wall_s;
    if (point.n == 10000) wall_10k = point.wall_s;
    points.push_back(point);
  }

  const double growth = wall_1k > 0.0 ? wall_10k / wall_1k : 0.0;
  const bool sub_quadratic = growth > 0.0 && growth < 100.0;
  std::printf("\nwall growth 1k -> 10k: %.2fx (quadratic would be 100x) -> %s\n", growth,
              sub_quadratic ? "sub-quadratic" : "NOT sub-quadratic");
  write_json(points, growth, sub_quadratic, sim_s, json_path);
  return sub_quadratic ? 0 : 1;
}
