// bench_ablation_burst — ablation D: the burst policy (paper: min 3 to
// amortise the radio startup, max 8 for fairness).  Sweeping the policy
// shows the startup-amortisation effect that drives Fig 11's decreasing
// pure-LEACH curve, and what the max cap costs/buys.
//
// (min, max) pairs are not a cartesian product — min > max would be
// invalid — so this uses a JOINT sweep axis: one axis whose key lists
// both config keys and whose values move them in lockstep.
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace caem;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Ablation D — burst policy (min/max packets per access)",
                      "paper values 3/8; pure LEACH at load 10");

  const std::vector<std::string> policies =
      args.fast ? std::vector<std::string>{"1/1", "3/8"}
                : std::vector<std::string>{"1/1", "1/8", "3/8", "8/8", "1/16", "3/16"};

  // Engine sweep (file-driven equivalent:
  // examples/scenarios/ablation_burst.scn).
  scenario::ScenarioSpec spec;
  spec.name = "ablation-burst";
  spec.base_config = args.config;
  spec.base_config.traffic_rate_pps = 10.0;
  spec.base_config.initial_energy_j = 1e6;
  spec.base_seed = args.seed;
  spec.replications = args.reps;
  spec.options.max_sim_s = args.fast ? 60.0 : 120.0;
  spec.protocols = {core::protocol_from_string("leach")};
  spec.axes.push_back(scenario::Axis{"burst_min,burst_max", policies});
  const scenario::ScenarioResult sweep = scenario::run_scenario(spec);

  util::TableWriter table({"min/max", "mJ/packet", "mean delay ms", "queue stddev",
                           "collisions", "startup mJ share %"});
  for (const scenario::PointResult& point : sweep.points) {
    const core::Replicated& summary = point.protocols[0].replicated;
    const core::NetworkConfig& config = point.config;
    // Startup share: startup events x startup energy / total consumed.
    double startup_share = 0.0, collisions = 0.0;
    for (const auto& run : summary.runs) {
      const double startup_j = static_cast<double>(run.mac.bursts_started) *
                               config.data_startup_s * config.data_tx_w;
      startup_share += startup_j / run.total_consumed_j;
      collisions += static_cast<double>(run.collisions);
    }
    const auto reps = static_cast<double>(args.reps);
    table.new_row()
        .cell(std::to_string(config.burst.min_packets) + "/" +
              std::to_string(config.burst.max_packets))
        .cell(summary.energy_per_packet_j.mean() * 1e3, 3)
        .cell(summary.mean_delay_s.mean() * 1e3, 1)
        .cell(summary.queue_stddev.mean(), 2)
        .cell(collisions / reps, 0)
        .cell(startup_share / reps * 100.0, 1);
  }
  table.render(std::cout);
  std::cout << "\nexpected: 1/1 pays the startup cost per packet (highest mJ/packet and\n"
               "most channel accesses); larger bursts amortise it at some delay cost.\n";
  return 0;
}
