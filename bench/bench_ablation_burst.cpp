// bench_ablation_burst — ablation D: the burst policy (paper: min 3 to
// amortise the radio startup, max 8 for fairness).  Sweeping the policy
// shows the startup-amortisation effect that drives Fig 11's decreasing
// pure-LEACH curve, and what the max cap costs/buys.
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace caem;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Ablation D — burst policy (min/max packets per access)",
                      "paper values 3/8; pure LEACH at load 10");

  struct Policy {
    std::size_t min, max;
  };
  const std::vector<Policy> policies = args.fast
                                           ? std::vector<Policy>{{1, 1}, {3, 8}}
                                           : std::vector<Policy>{{1, 1}, {1, 8}, {3, 8},
                                                                 {8, 8}, {1, 16}, {3, 16}};

  core::RunOptions options;
  options.max_sim_s = args.fast ? 60.0 : 120.0;

  util::TableWriter table({"min/max", "mJ/packet", "mean delay ms", "queue stddev",
                           "collisions", "startup mJ share %"});
  for (const Policy& policy : policies) {
    core::NetworkConfig config = args.config;
    config.burst.min_packets = policy.min;
    config.burst.max_packets = policy.max;
    config.traffic_rate_pps = 10.0;
    config.initial_energy_j = 1e6;
    const auto summary = core::run_replicated(config, core::Protocol::kPureLeach, args.seed,
                                              args.reps, options);
    // Startup share: startup events x startup energy / total consumed.
    double startup_share = 0.0, collisions = 0.0;
    for (const auto& run : summary.runs) {
      const double startup_j = static_cast<double>(run.mac.bursts_started) *
                               config.data_startup_s * config.data_tx_w;
      startup_share += startup_j / run.total_consumed_j;
      collisions += static_cast<double>(run.collisions);
    }
    const auto reps = static_cast<double>(args.reps);
    table.new_row()
        .cell(std::to_string(policy.min) + "/" + std::to_string(policy.max))
        .cell(summary.energy_per_packet_j.mean() * 1e3, 3)
        .cell(summary.mean_delay_s.mean() * 1e3, 1)
        .cell(summary.queue_stddev.mean(), 2)
        .cell(collisions / reps, 0)
        .cell(startup_share / reps * 100.0, 1);
  }
  table.render(std::cout);
  std::cout << "\nexpected: 1/1 pays the startup cost per packet (highest mJ/packet and\n"
               "most channel accesses); larger bursts amortise it at some delay cost.\n";
  return 0;
}
